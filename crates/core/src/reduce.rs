//! Dimensionality reduction for index filters (§4.7 of the paper).
//!
//! High-dimensional index structures fall prey to the curse of
//! dimensionality, so the paper runs the index phase of its multistep
//! algorithm in **three** dimensions, via one of two reducers:
//!
//! * [`AvgReducer`] — Rubner's centroid averaging: the key is the
//!   histogram's center of mass in the (3-D) feature space; the filter
//!   metric is unweighted Euclidean. This *is* `LB_Avg`, relocated onto
//!   the index.
//! * [`ManhattanReducer`] — keep only the `k` bins with the highest
//!   variance across the database, scaled by the Manhattan filter
//!   weights; the filter metric is unweighted `L1` over the scaled keys.
//!   Dropping (non-negative) summands of `LB_Man` can only shrink the
//!   value, so lower bounding survives the projection.
//!
//! Either way the reduced filter distance still lower bounds the EMD, so
//! completeness of the multistep result is untouched.

use crate::db::HistogramDb;
use crate::histogram::Histogram;
use crate::lower_bounds::{min_off_diagonal_costs, LbAvg};
use earthmover_rtree::{LpKind, WeightedLp};
use earthmover_transport::CostMatrix;

/// Maps a histogram to a low-dimensional index key such that the reduced
/// metric distance between keys lower bounds the EMD between histograms.
pub trait IndexReducer: Send + Sync {
    /// Dimensionality of the produced keys.
    fn key_dims(&self) -> usize;

    /// The index key of a histogram.
    fn key(&self, h: &Histogram) -> Vec<f64>;

    /// The metric the index compares keys with. The contract is
    /// `metric(key(x), key(y)) ≤ EMD(x, y)` for equal-mass histograms.
    fn metric(&self) -> WeightedLp;

    /// Stable display name for statistics (e.g. `"LB_Avg(3D)"`).
    fn name(&self) -> &'static str;
}

/// Centroid-averaging reducer: keys are mass centers in feature space.
#[derive(Debug, Clone)]
pub struct AvgReducer {
    avg: LbAvg,
}

impl AvgReducer {
    /// Builds the reducer from per-bin centroids (see
    /// [`crate::ground::BinGrid::centroids`]).
    pub fn new(centroids: Vec<Vec<f64>>) -> Self {
        AvgReducer {
            avg: LbAvg::new(centroids),
        }
    }
}

impl IndexReducer for AvgReducer {
    fn key_dims(&self) -> usize {
        self.avg.feature_dims()
    }

    fn key(&self, h: &Histogram) -> Vec<f64> {
        self.avg.average(h)
    }

    fn metric(&self) -> WeightedLp {
        WeightedLp::uniform(LpKind::L2, self.key_dims())
    }

    fn name(&self) -> &'static str {
        "LB_Avg(3D)"
    }
}

/// Variance-based reducer for the weighted Manhattan bound: keeps the `k`
/// highest-variance bins, pre-scaled by the per-bin weights
/// `min_{j≠i} c_ij / (2m)` so the index can use a plain (unweighted) `L1`
/// metric.
///
/// The database is assumed mass-normalized (`m = 1`), which
/// [`HistogramDb`] guarantees.
#[derive(Debug, Clone)]
pub struct ManhattanReducer {
    /// Selected bin indices, highest variance first.
    selected: Vec<usize>,
    /// Scale factor (`min cost / 2`) for each selected bin.
    scales: Vec<f64>,
}

impl ManhattanReducer {
    /// Picks the `k` bins with the highest variance across `db` and scales
    /// them by the Manhattan weights derived from `cost`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the histogram arity.
    pub fn from_db(db: &HistogramDb, cost: &CostMatrix, k: usize) -> Self {
        assert!(k > 0 && k <= db.dims(), "invalid reduced dimensionality");
        let variances = db.bin_variances();
        Self::from_variances(&variances, cost, k)
    }

    /// Builds the reducer from externally computed per-bin variances.
    pub fn from_variances(variances: &[f64], cost: &CostMatrix, k: usize) -> Self {
        assert_eq!(variances.len(), cost.len(), "variance arity mismatch");
        let mut order: Vec<usize> = (0..variances.len()).collect();
        order.sort_by(|&a, &b| variances[b].total_cmp(&variances[a]).then(a.cmp(&b)));
        let selected: Vec<usize> = order.into_iter().take(k).collect();
        let min_costs = min_off_diagonal_costs(cost);
        let scales = selected.iter().map(|&i| min_costs[i] / 2.0).collect();
        ManhattanReducer { selected, scales }
    }

    /// The selected bin indices (highest variance first).
    pub fn selected_bins(&self) -> &[usize] {
        &self.selected
    }
}

impl IndexReducer for ManhattanReducer {
    fn key_dims(&self) -> usize {
        self.selected.len()
    }

    fn key(&self, h: &Histogram) -> Vec<f64> {
        // Keys are weighted bins w_i * x_i; with mass-1 histograms the
        // weight is min_cost/2. For robustness against unnormalized query
        // histograms, fold the query mass in here.
        let inv_m = 1.0 / h.mass().max(f64::MIN_POSITIVE);
        self.selected
            .iter()
            .zip(&self.scales)
            .map(|(&i, s)| s * h.get(i) * inv_m)
            .collect()
    }

    fn metric(&self) -> WeightedLp {
        WeightedLp::uniform(LpKind::L1, self.selected.len())
    }

    fn name(&self) -> &'static str {
        "LB_Man(3D)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::lower_bounds::{DistanceMeasure, ExactEmd, LbManhattan};
    use earthmover_rtree::PointMetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_db(grid: &BinGrid, count: usize, seed: u64) -> HistogramDb {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        db
    }

    #[test]
    fn avg_reducer_matches_lb_avg() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let db = build_db(&grid, 10, 1);
        let reducer = AvgReducer::new(grid.centroids().to_vec());
        let lb = LbAvg::new(grid.centroids().to_vec());
        let metric = reducer.metric();
        for (_, x) in db.iter().map(|(i, h)| (i, h.to_histogram())) {
            for (_, y) in db.iter().map(|(i, h)| (i, h.to_histogram())) {
                let via_keys = metric.distance(&reducer.key(&x), &reducer.key(&y));
                let direct = lb.distance(&x, &y);
                assert!((via_keys - direct).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn manhattan_reducer_lower_bounds_full_bound_and_emd() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let cost = grid.cost_matrix();
        let db = build_db(&grid, 12, 2);
        let reducer = ManhattanReducer::from_db(&db, &cost, 3);
        let full = LbManhattan::new(&cost);
        let exact = ExactEmd::new(cost.clone());
        let metric = reducer.metric();
        for (_, x) in db.iter().map(|(i, h)| (i, h.to_histogram())) {
            for (_, y) in db.iter().map(|(i, h)| (i, h.to_histogram())) {
                let reduced = metric.distance(&reducer.key(&x), &reducer.key(&y));
                let full_val = full.distance(&x, &y);
                let emd = exact.distance(&x, &y);
                assert!(reduced <= full_val + 1e-12, "{reduced} > {full_val}");
                assert!(reduced <= emd + 1e-9, "{reduced} > {emd}");
            }
        }
    }

    #[test]
    fn manhattan_reducer_selects_high_variance_bins() {
        let cost = CostMatrix::from_fn(4, |i, j| if i == j { 0.0 } else { 1.0 });
        let variances = [0.1, 0.9, 0.5, 0.7];
        let r = ManhattanReducer::from_variances(&variances, &cost, 2);
        assert_eq!(r.selected_bins(), &[1, 3]);
        assert_eq!(r.key_dims(), 2);
    }

    #[test]
    fn reducer_names() {
        let grid = BinGrid::new(vec![2, 2]);
        let avg = AvgReducer::new(grid.centroids().to_vec());
        assert_eq!(avg.name(), "LB_Avg(3D)");
        assert_eq!(avg.key_dims(), 2);
        let cost = grid.cost_matrix();
        let db = build_db(&grid, 5, 3);
        let man = ManhattanReducer::from_db(&db, &cost, 3);
        assert_eq!(man.name(), "LB_Man(3D)");
    }

    #[test]
    #[should_panic(expected = "invalid reduced dimensionality")]
    fn oversized_k_panics() {
        let grid = BinGrid::new(vec![2]);
        let db = build_db(&grid, 3, 4);
        let _ = ManhattanReducer::from_db(&db, &grid.cost_matrix(), 5);
    }
}
