//! Multi-threaded sequential-scan execution.
//!
//! Filter scans are embarrassingly parallel: every `(query, object)` pair
//! is independent. This module prepares the measure against the query
//! once ([`DistanceMeasure::prepare`]) and fans the resulting block
//! kernel out over contiguous slices of the database's columnar arena
//! with `crossbeam`'s scoped threads, so borrowed databases and measures
//! need no `Arc` plumbing. It is an engineering extension beyond the
//! paper (which ran single-threaded Java in 2006), used by the benchmark
//! harness to keep large-scale experiment sweeps tractable.

use crate::db::HistogramDb;
use crate::error::PipelineError;
use crate::histogram::Histogram;
use crate::lower_bounds::DistanceMeasure;
use earthmover_obs as obs;

/// Computes `measure(q, o)` for every object of the database, in id
/// order, using up to `threads` worker threads.
///
/// The measure is compiled into a block kernel once per call; workers
/// then each sweep one contiguous arena block. Results are bit-identical
/// to the per-pair scalar path at any thread count. With `threads <= 1`
/// the kernel runs over the whole arena inline (no thread spawn
/// overhead).
///
/// # Panics
///
/// Panics when a paged database's block read fails — fallible callers
/// (and every paged scan path in the query engine) use
/// [`try_scan_distances`].
pub fn scan_distances(
    db: &HistogramDb,
    q: &Histogram,
    measure: &dyn DistanceMeasure,
    threads: usize,
) -> Vec<f64> {
    try_scan_distances(db, q, measure, threads)
        // xlint:allow(panic_freedom): documented panicking convenience; fallible callers use try_scan_distances
        .expect("paged block read failed during scan; use try_scan_distances")
}

/// [`scan_distances`] with typed errors: a paged database whose block
/// read fails (checksum mismatch, I/O fault) surfaces
/// [`PipelineError::Source`] instead of panicking.
///
/// Resident databases take the exact legacy code path — one
/// `eval_block` over the whole arena, or row-chunked workers — so their
/// results are bit-for-bit unchanged. Paged databases stream whole
/// blocks through the buffer pool (workers partition the *block* range,
/// never splitting a block), and the kernel block contract
/// (`out[i] == eval(row i)`) keeps that bit-identical too.
pub fn try_scan_distances(
    db: &HistogramDb,
    q: &Histogram,
    measure: &dyn DistanceMeasure,
    threads: usize,
) -> Result<Vec<f64>, PipelineError> {
    let n = db.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n);
    let dims = db.dims();
    let kernel = measure.prepare(q);
    let mut out = vec![0.0f64; n];
    let _span = obs::span!("block_scan", rows = n, threads = threads);

    if let Some(arena) = db.resident_arena() {
        if threads == 1 {
            kernel.eval_block(arena, dims, &mut out);
            return Ok(out);
        }
        let chunk = n.div_ceil(threads);
        let kernel = &*kernel;
        crossbeam::thread::scope(|scope| {
            for (slice, block) in out.chunks_mut(chunk).zip(arena.chunks(chunk * dims)) {
                scope.spawn(move |_| kernel.eval_block(block, dims, slice));
            }
        })
        // Intentional panic: a worker panic means the measure itself
        // panicked (a bug, not a query-time condition) — propagate it.
        // xlint:allow(panic_freedom): re-raises a worker panic; swallowing it would return garbage distances
        .expect("scan worker panicked");
        return Ok(out);
    }

    // Paged database: stream pinned block leases through the pool.
    let rpb = db.rows_per_block().max(1);
    if threads == 1 {
        for (b, slot) in out.chunks_mut(rpb).enumerate() {
            let data = db.block(b)?;
            kernel.eval_block(&data, dims, slot);
        }
        return Ok(out);
    }
    let blocks = db.num_blocks();
    let threads = threads.min(blocks);
    let blocks_per_worker = blocks.div_ceil(threads);
    let kernel = &*kernel;
    let mut errors: Vec<Option<PipelineError>> = (0..threads).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for ((worker, slice), error) in out
            .chunks_mut(blocks_per_worker * rpb)
            .enumerate()
            .zip(errors.iter_mut())
        {
            scope.spawn(move |_| {
                for (offset, slot) in slice.chunks_mut(rpb).enumerate() {
                    match db.block(worker * blocks_per_worker + offset) {
                        Ok(data) => kernel.eval_block(&data, dims, slot),
                        Err(e) => {
                            *error = Some(e);
                            return;
                        }
                    }
                }
            });
        }
    })
    // Intentional panic: a worker panic means the measure itself
    // panicked (a bug, not a query-time condition) — propagate it.
    // xlint:allow(panic_freedom): re-raises a worker panic; swallowing it would return garbage distances
    .expect("scan worker panicked");
    if let Some(e) = errors.into_iter().flatten().next() {
        return Err(e);
    }
    Ok(out)
}

/// Parallel ε-range filter: ids (ascending) whose filter distance is at
/// most `epsilon`.
pub fn scan_range(
    db: &HistogramDb,
    q: &Histogram,
    measure: &dyn DistanceMeasure,
    epsilon: f64,
    threads: usize,
) -> Vec<(usize, f64)> {
    scan_distances(db, q, measure, threads)
        .into_iter()
        .enumerate()
        .filter(|(_, d)| *d <= epsilon)
        .collect()
}

/// Parallel exact k-NN baseline: the brute-force result computed with all
/// available cores. Returns `(id, distance)` ascending by distance.
pub fn scan_knn(
    db: &HistogramDb,
    q: &Histogram,
    measure: &dyn DistanceMeasure,
    k: usize,
    threads: usize,
) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = scan_distances(db, q, measure, threads)
        .into_iter()
        .enumerate()
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Executes a batch of k-NN queries against one engine across worker
/// threads (one query per task, queries distributed round-robin).
///
/// The engine is shared immutably — index structures are read-only after
/// construction — so a retrieval service can saturate all cores on a
/// query stream without duplicating the database or the index. Results
/// come back in input order; the first query error (after the engine's
/// own degradation handling) fails the batch.
pub fn batch_knn(
    engine: &crate::pipeline::QueryEngine<'_>,
    queries: &[Histogram],
    k: usize,
    threads: usize,
) -> Result<Vec<crate::multistep::QueryResult>, crate::error::PipelineError> {
    let n = queries.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return queries.iter().map(|q| engine.knn(q, k)).collect();
    }
    type Slot = Option<Result<crate::multistep::QueryResult, crate::error::PipelineError>>;
    let mut out: Vec<Slot> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (worker, slice) in out.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            scope.spawn(move |_| {
                for (offset, cell) in slice.iter_mut().enumerate() {
                    *cell = Some(engine.knn(&queries[start + offset], k));
                }
            });
        }
    })
    // Intentional panic: a worker panic is a bug in the measure itself,
    // not a recoverable query failure — propagate it.
    // xlint:allow(panic_freedom): re-raises a worker panic; swallowing it would return garbage results
    .expect("batch worker panicked");
    out.into_iter()
        // xlint:allow(panic_freedom): the scope above joined every worker, so each slot is Some
        .map(|r| r.expect("every slot is filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::lower_bounds::{ExactEmd, LbManhattan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize) -> (BinGrid, HistogramDb, Histogram) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(77);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let q = random_histogram(&mut rng, grid.num_bins());
        (grid, db, q)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (grid, db, q) = setup(97); // deliberately not a multiple of the thread count
        let filter = LbManhattan::new(&grid.cost_matrix());
        let seq = scan_distances(&db, &q, &filter, 1);
        // The block-kernel path must be bit-identical to the scalar
        // per-pair path — selectivity cannot shift with the executor.
        let scalar: Vec<f64> = db
            .iter()
            .map(|(_, h)| filter.distance(&q, &h.to_histogram()))
            .collect();
        assert_eq!(seq, scalar);
        for threads in [2, 3, 8, 200] {
            let par = scan_distances(&db, &q, &filter, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a, b, "threads={threads}");
            }
        }
    }

    #[test]
    fn paged_scan_is_bit_identical_to_resident() {
        let (grid, db, q) = setup(97);
        let filter = LbManhattan::new(&grid.cost_matrix());
        let resident = scan_distances(&db, &q, &filter, 1);

        let dir = std::env::temp_dir().join("earthmover-parallel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.emdc");
        let _ = std::fs::remove_file(&path);
        // 7 rows per block -> 14 blocks; pool of 3 blocks forces steady
        // eviction during the scan.
        crate::storage::save_paged_with(&earthmover_storage::StdVfs, &db, &path, 7).unwrap();
        let paged = crate::storage::open_paged(&path, 3 * 7 * db.dims() * 8).unwrap();
        assert!(paged.num_blocks() >= 14);
        for threads in [1, 2, 5, 200] {
            let got = try_scan_distances(&paged, &q, &filter, threads).unwrap();
            assert_eq!(got, resident, "threads={threads}");
        }
        let stats = paged.pool_stats().unwrap();
        assert!(stats.misses > 0);
        assert!(stats.evictions > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_db() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let db = HistogramDb::new(grid.num_bins());
        let q = random_histogram(&mut StdRng::seed_from_u64(1), grid.num_bins());
        let filter = LbManhattan::new(&grid.cost_matrix());
        assert!(scan_distances(&db, &q, &filter, 4).is_empty());
    }

    #[test]
    fn parallel_knn_matches_exact_scan() {
        let (grid, db, q) = setup(40);
        let exact = ExactEmd::new(grid.cost_matrix());
        let par = scan_knn(&db, &q, &exact, 5, 4);
        let seq = scan_knn(&db, &q, &exact, 5, 1);
        assert_eq!(par, seq);
        assert_eq!(par.len(), 5);
        for w in par.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn range_filters_by_epsilon() {
        let (grid, db, q) = setup(50);
        let filter = LbManhattan::new(&grid.cost_matrix());
        let eps = 0.05;
        let hits = scan_range(&db, &q, &filter, eps, 4);
        for (id, d) in &hits {
            assert!(*d <= eps);
            assert!((filter.distance(&q, &db.get(*id).to_histogram()) - d).abs() < 1e-12);
        }
        let full = scan_distances(&db, &q, &filter, 1);
        let expect = full.iter().filter(|d| **d <= eps).count();
        assert_eq!(hits.len(), expect);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::pipeline::QueryEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_matches_sequential_queries() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(404);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..150 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let engine = QueryEngine::builder(&db, &grid).build();
        let queries: Vec<Histogram> = (0..9)
            .map(|_| random_histogram(&mut rng, grid.num_bins()))
            .collect();
        let sequential = batch_knn(&engine, &queries, 5, 1).unwrap();
        for threads in [2, 4, 16] {
            let parallel = batch_knn(&engine, &queries, 5, threads).unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                let pd: Vec<f64> = p.items.iter().map(|(_, d)| *d).collect();
                let sd: Vec<f64> = s.items.iter().map(|(_, d)| *d).collect();
                assert_eq!(pd.len(), sd.len());
                for (a, b) in pd.iter().zip(&sd) {
                    assert!((a - b).abs() < 1e-9, "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn empty_batch() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut db = HistogramDb::new(grid.num_bins());
        db.push(random_histogram(&mut StdRng::seed_from_u64(1), 8));
        let engine = QueryEngine::builder(&db, &grid).build();
        assert!(batch_knn(&engine, &[], 5, 4).unwrap().is_empty());
    }
}
