//! Per-query deadline budgets.
//!
//! A production serving layer (see `crates/serve`) cannot let one
//! expensive query — say, a range query that degrades to exact-EMD
//! refinement over most of the database — hold a worker thread hostage.
//! [`Deadline`] threads a wall-clock budget through the multistep
//! algorithms: when the budget is exhausted mid-query the algorithm stops
//! where it is and returns what it has, marking the result as partial
//! ([`crate::stats::QueryStats::deadline_expired`]) and recording a
//! degradation note, instead of either hanging or throwing work away.
//!
//! A [`Deadline`] is a tiny copyable value; [`Deadline::none`] (the
//! default) never expires and adds one branch per candidate to the query
//! loops, so the unbounded paths stay effectively free.

use std::time::{Duration, Instant};

/// A wall-clock budget for one query execution.
///
/// Construct with [`Deadline::none`] (unbounded), [`Deadline::within`]
/// (budget from now), or [`Deadline::at`] (absolute expiry, e.g. derived
/// once per network request and shared by retries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires — the behavior of every query API
    /// that predates deadlines.
    pub fn none() -> Deadline {
        Deadline { expires: None }
    }

    /// Expires `budget` from now. A zero budget is already expired.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            expires: Instant::now().checked_add(budget),
        }
    }

    /// Expires at the given instant.
    pub fn at(expires: Instant) -> Deadline {
        Deadline {
            expires: Some(expires),
        }
    }

    /// True when the deadline can never expire.
    pub fn is_unbounded(&self) -> bool {
        self.expires.is_none()
    }

    /// True once the budget is exhausted. Unbounded deadlines never
    /// expire; bounded ones read the monotonic clock.
    pub fn expired(&self) -> bool {
        match self.expires {
            None => false,
            Some(expires) => Instant::now() >= expires,
        }
    }

    /// Remaining budget: `None` for an unbounded deadline, zero once
    /// expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires
            .map(|expires| expires.saturating_duration_since(Instant::now()))
    }

    /// Carves a sub-budget for one leg of a concurrent fan-out: a new
    /// deadline expiring after `fraction` of *this* deadline's remaining
    /// budget, measured from now.
    ///
    /// A scatter-gather coordinator hands each shard
    /// `deadline.sub_budget(f)` with `f < 1` so the parent keeps a
    /// reserve for merging after the slowest shard answers. Because the
    /// legs run concurrently they all get the same fraction — the budget
    /// is not divided by the number of shards. An unbounded deadline
    /// stays unbounded; a non-finite `fraction` is treated as `1.0` and
    /// other values clamp to `[0, 1]`, so the sub-budget can never
    /// outlive the parent.
    pub fn sub_budget(&self, fraction: f64) -> Deadline {
        match self.remaining() {
            None => Deadline::none(),
            Some(rem) => {
                let f = if fraction.is_finite() {
                    fraction.clamp(0.0, 1.0)
                } else {
                    1.0
                };
                Deadline::within(rem.mul_f64(f))
            }
        }
    }
}

/// The degradation note recorded when a query is cut short by its
/// deadline. Kept as a constant so the serving layer and tests can match
/// it without duplicating the string.
pub const DEADLINE_NOTE: &str = "deadline expired; result is a partial best-effort prefix";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d, Deadline::default());
    }

    #[test]
    fn zero_budget_is_expired_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(1)));
    }

    #[test]
    fn absolute_deadline_in_the_past_is_expired() {
        let past = Instant::now() - Duration::from_millis(1);
        assert!(Deadline::at(past).expired());
    }

    #[test]
    fn sub_budget_never_outlives_parent() {
        let parent = Deadline::within(Duration::from_secs(10));
        let child = parent.sub_budget(0.5);
        let parent_rem = parent.remaining().unwrap();
        let child_rem = child.remaining().unwrap();
        assert!(child_rem <= parent_rem);
        assert!(
            child_rem >= Duration::from_secs(4),
            "half of ~10s must remain, got {child_rem:?}"
        );
        // Out-of-range and non-finite fractions clamp instead of panic.
        assert!(parent.sub_budget(7.0).remaining().unwrap() <= parent_rem);
        assert!(parent.sub_budget(-3.0).expired());
        assert!(!parent.sub_budget(f64::NAN).expired());
    }

    #[test]
    fn sub_budget_of_unbounded_is_unbounded() {
        assert!(Deadline::none().sub_budget(0.25).is_unbounded());
    }

    #[test]
    fn sub_budget_of_expired_is_expired() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.sub_budget(0.9).expired());
    }

    #[test]
    fn overflowing_budget_saturates_to_unbounded() {
        // `Instant + huge Duration` has no representable expiry; treating
        // it as unbounded is the only non-surprising reading.
        let d = Deadline::within(Duration::MAX);
        assert!(!d.expired());
    }
}
