//! Multistep (filter-and-refine) query processing.
//!
//! The algorithms of §3 of the paper, generic over a [`CandidateSource`]
//! (where first-stage candidates come from) and an arbitrary chain of
//! intermediate lower-bound filters:
//!
//! * [`range_query`] — ε-range retrieval with filter pre-selection,
//! * [`gemini_knn`] — the classic GEMINI two-pass k-NN
//!   (Faloutsos et al.),
//! * [`optimal_knn`] — the optimal multistep k-NN of Seidl & Kriegel
//!   (SIGMOD 1998), which interleaves ranking and refinement and provably
//!   generates the minimum number of exact-distance candidates,
//! * [`linear_scan_knn`] — the no-filter baseline (sequential scan with
//!   the exact distance), the paper's comparison floor.
//!
//! Completeness of all algorithms rests on the lower-bounding property of
//! the filters; the integration tests verify every configuration against
//! the brute-force result.

mod algorithms;
mod source;
mod stream;

pub use algorithms::{
    gemini_knn, gemini_knn_within, linear_scan_knn, linear_scan_knn_within, optimal_knn,
    optimal_knn_relaxed_within, optimal_knn_within, range_query, range_query_within, QueryResult,
};
pub use source::{
    CandidateSource, FailingSource, RankingCursor, RtreeSource, ScanSource, SourceCost,
};
pub use stream::{nearest_stream, NearestStream};
