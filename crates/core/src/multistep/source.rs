//! Candidate sources: where the first filter stage gets its candidates.
//!
//! A [`CandidateSource`] abstracts over the two first-stage organizations
//! the paper compares: a **sequential scan** evaluating a filter distance
//! for every object ([`ScanSource`]), and a **multidimensional index**
//! pruning by rectangle lower bounds ([`RtreeSource`], over reduced 3-D
//! keys as in §4.7). Both expose the two access patterns multistep
//! algorithms need: an ε-range lookup and an incremental
//! distance ranking.

use crate::cache::CacheKey;
use crate::db::HistogramDb;
use crate::error::PipelineError;
use crate::histogram::Histogram;
use crate::lower_bounds::DistanceMeasure;
use crate::reduce::IndexReducer;
use earthmover_rtree::{QueryStats as RtreeStats, RTree, WeightedLp};
use std::sync::Arc;

/// Work performed inside a candidate source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceCost {
    /// Filter distance evaluations (point-level).
    pub filter_evaluations: u64,
    /// Index node accesses (zero for scans).
    pub node_accesses: u64,
}

/// A source of first-stage candidates ordered or selected by a filter
/// distance that lower bounds the exact distance.
///
/// Sources are fallible: a source backed by persistent storage (a
/// paged index, a memory-mapped file) can hit corruption at query time.
/// The in-memory sources here never fail, but the engine reacts to
/// [`PipelineError::Source`] from any source by degrading to a
/// sequential scan (see [`crate::pipeline::QueryEngine`]).
pub trait CandidateSource {
    /// Number of database objects behind the source.
    fn len(&self) -> usize;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stage name for statistics (typically the filter's name).
    fn name(&self) -> &str;

    /// Starts an incremental ranking: candidates are produced in
    /// nondecreasing filter-distance order.
    fn ranking<'s>(&'s self, q: &Histogram) -> Result<Box<dyn RankingCursor + 's>, PipelineError>;

    /// All objects whose filter distance from `q` is at most `epsilon`,
    /// with their filter distances, plus the work performed.
    fn range(
        &self,
        q: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<(usize, f64)>, SourceCost), PipelineError>;
}

/// An in-progress incremental ranking over a [`CandidateSource`].
pub trait RankingCursor {
    /// The next candidate `(id, filter_distance)` in nondecreasing
    /// filter-distance order, or `None` when the database is exhausted.
    fn next(&mut self) -> Result<Option<(usize, f64)>, PipelineError>;

    /// Cumulative work performed by this cursor so far.
    fn cost(&self) -> SourceCost;
}

// ---------------------------------------------------------------------------
// Sequential scan source
// ---------------------------------------------------------------------------

/// A sequential-scan candidate source: evaluates `filter` against every
/// database object.
///
/// The ranking variant materializes and sorts all distances up front —
/// that *is* the cost profile of a scan-based filter, and it is the shape
/// the paper's "simple multistep" configurations use.
pub struct ScanSource<'a, F: DistanceMeasure> {
    db: &'a HistogramDb,
    filter: F,
}

impl<'a, F: DistanceMeasure> ScanSource<'a, F> {
    /// Wraps a database and a filter distance.
    pub fn new(db: &'a HistogramDb, filter: F) -> Self {
        ScanSource { db, filter }
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Evaluates the filter for every database object through the
    /// query-compiled block kernel ([`DistanceMeasure::prepare`]), in id
    /// order — the per-query cost profile of a scan source.
    ///
    /// The scan streams storage blocks (one whole-arena block when the
    /// database is resident, pinned buffer-pool leases when paged); the
    /// kernel block contract keeps either path bit-identical to the
    /// scalar per-pair evaluation. Whole distance columns are memoized
    /// in the database's [`crate::cache::FilterCache`] keyed by
    /// *(filter, parameters, query)* — a hit skips the disk entirely and
    /// returns the identical column. Reported work statistics stay
    /// nominal on a hit: the cache is an executor optimization, not a
    /// change to the logical scan.
    fn scan_block(&self, q: &Histogram) -> Result<Arc<Vec<f64>>, PipelineError> {
        let cache = self.db.filter_cache();
        let key = self.filter.cache_signature().map(|params| CacheKey {
            filter: self.filter.name(),
            params,
            query: crate::cache::signature_of(q.bins()),
            rows: self.db.len(),
        });
        if let Some(key) = &key {
            if let Some(column) = cache.get(key) {
                return Ok(column);
            }
        }
        let kernel = self.filter.prepare(q);
        let dims = self.db.dims();
        let mut dists = vec![0.0; self.db.len()];
        let rows_per_block = self.db.rows_per_block().max(1);
        for (b, slot) in dists.chunks_mut(rows_per_block).enumerate() {
            let data = self.db.block(b).map_err(|e| PipelineError::Source {
                stage: self.filter.name().to_string(),
                reason: match e {
                    PipelineError::Source { reason, .. } => reason,
                    other => other.to_string(),
                },
            })?;
            kernel.eval_block(&data, dims, slot);
        }
        let column = Arc::new(dists);
        if let Some(key) = key {
            cache.insert(key, Arc::clone(&column));
        }
        Ok(column)
    }
}

impl<'a, F: DistanceMeasure> CandidateSource for ScanSource<'a, F> {
    fn len(&self) -> usize {
        self.db.len()
    }

    fn name(&self) -> &str {
        self.filter.name()
    }

    fn ranking<'s>(&'s self, q: &Histogram) -> Result<Box<dyn RankingCursor + 's>, PipelineError> {
        let mut ranked: Vec<(usize, f64)> =
            self.scan_block(q)?.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        Ok(Box::new(ScanCursor {
            evaluations: ranked.len() as u64,
            ranked: ranked.into_iter(),
        }))
    }

    fn range(
        &self,
        q: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<(usize, f64)>, SourceCost), PipelineError> {
        let out = self
            .scan_block(q)?
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, d)| *d <= epsilon)
            .collect();
        Ok((
            out,
            SourceCost {
                filter_evaluations: self.db.len() as u64,
                node_accesses: 0,
            },
        ))
    }
}

struct ScanCursor {
    ranked: std::vec::IntoIter<(usize, f64)>,
    evaluations: u64,
}

impl RankingCursor for ScanCursor {
    fn next(&mut self) -> Result<Option<(usize, f64)>, PipelineError> {
        Ok(self.ranked.next())
    }

    fn cost(&self) -> SourceCost {
        SourceCost {
            filter_evaluations: self.evaluations,
            node_accesses: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// R-tree index source
// ---------------------------------------------------------------------------

/// An R-tree candidate source over reduced index keys (§4.7).
///
/// Construction reduces every database histogram to a low-dimensional key
/// (3-D in the paper) and bulk-loads an R-tree. Queries reduce the query
/// histogram once and run entirely on the index; the filter distance is
/// the reducer's metric over keys, which lower bounds the EMD by the
/// reducer contract.
pub struct RtreeSource<'a, R: IndexReducer> {
    reducer: R,
    metric: WeightedLp,
    tree: RTree,
    len: usize,
    _db: std::marker::PhantomData<&'a HistogramDb>,
}

impl<'a, R: IndexReducer> RtreeSource<'a, R> {
    /// Reduces all histograms of `db` and bulk-loads the index.
    pub fn build(db: &'a HistogramDb, reducer: R) -> Self {
        let items: Vec<(Vec<f64>, u64)> = db
            .iter()
            .map(|(id, h)| (reducer.key(&h.to_histogram()), id as u64))
            .collect();
        let metric = reducer.metric();
        let dims = reducer.key_dims();
        let tree = RTree::bulk_load(dims, items);
        RtreeSource {
            reducer,
            metric,
            tree,
            len: db.len(),
            _db: std::marker::PhantomData,
        }
    }

    /// The underlying R-tree (e.g. for inspecting height or node count).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The reducer building index keys.
    pub fn reducer(&self) -> &R {
        &self.reducer
    }
}

impl<'a, R: IndexReducer> CandidateSource for RtreeSource<'a, R> {
    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &str {
        self.reducer.name()
    }

    fn ranking<'s>(&'s self, q: &Histogram) -> Result<Box<dyn RankingCursor + 's>, PipelineError> {
        let key = self.reducer.key(q);
        Ok(Box::new(RtreeCursor {
            inner: self.tree.rank_by_distance_owned(key, self.metric.clone()),
        }))
    }

    fn range(
        &self,
        q: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<(usize, f64)>, SourceCost), PipelineError> {
        let key = self.reducer.key(q);
        let mut stats = RtreeStats::default();
        let hits = self
            .tree
            .range_within(&key, epsilon, &self.metric, &mut stats);
        Ok((
            hits.into_iter().map(|(id, d)| (id as usize, d)).collect(),
            SourceCost {
                filter_evaluations: stats.distance_evaluations,
                node_accesses: stats.node_accesses,
            },
        ))
    }
}

/// Lazy cursor over the R-tree's owned incremental ranking: only as much
/// of the index is traversed as the consumer pulls, which is what lets
/// the optimal multistep algorithm stop after a handful of candidates.
struct RtreeCursor<'t> {
    inner: earthmover_rtree::OwnedRanking<'t, WeightedLp>,
}

impl<'t> RankingCursor for RtreeCursor<'t> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, PipelineError> {
        Ok(self.inner.next().map(|(id, d)| (id as usize, d)))
    }

    fn cost(&self) -> SourceCost {
        let stats = self.inner.stats();
        SourceCost {
            filter_evaluations: stats.distance_evaluations,
            node_accesses: stats.node_accesses,
        }
    }
}

// ---------------------------------------------------------------------------
// Failing source (fault injection)
// ---------------------------------------------------------------------------

/// A candidate source that fails on demand — the query-layer counterpart
/// of the storage crate's fault-injecting VFS.
///
/// Wraps an inner source and errors either immediately (`fail_after = 0`)
/// or after the ranking cursor has produced `fail_after` candidates,
/// simulating an index that goes bad mid-traversal (e.g. a corrupt page
/// deep in a persisted R-tree). Used to test the engine's degradation
/// path; see `QueryEngine` for the fallback contract.
pub struct FailingSource<S> {
    inner: S,
    fail_after: usize,
    reason: String,
}

impl<S: CandidateSource> FailingSource<S> {
    /// Fails `range` immediately and `ranking` cursors after they have
    /// produced `fail_after` candidates.
    pub fn new(inner: S, fail_after: usize, reason: impl Into<String>) -> Self {
        FailingSource {
            inner,
            fail_after,
            reason: reason.into(),
        }
    }

    fn error(&self) -> PipelineError {
        PipelineError::Source {
            stage: self.inner.name().to_string(),
            reason: self.reason.clone(),
        }
    }
}

impl<S: CandidateSource> CandidateSource for FailingSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn ranking<'s>(&'s self, q: &Histogram) -> Result<Box<dyn RankingCursor + 's>, PipelineError> {
        if self.fail_after == 0 {
            return Err(self.error());
        }
        Ok(Box::new(FailingCursor {
            inner: self.inner.ranking(q)?,
            remaining: self.fail_after,
            error: self.error(),
        }))
    }

    fn range(
        &self,
        _q: &Histogram,
        _epsilon: f64,
    ) -> Result<(Vec<(usize, f64)>, SourceCost), PipelineError> {
        Err(self.error())
    }
}

struct FailingCursor<'s> {
    inner: Box<dyn RankingCursor + 's>,
    remaining: usize,
    error: PipelineError,
}

impl<'s> RankingCursor for FailingCursor<'s> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, PipelineError> {
        if self.remaining == 0 {
            return Err(self.error.clone());
        }
        self.remaining -= 1;
        self.inner.next()
    }

    fn cost(&self) -> SourceCost {
        self.inner.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::lower_bounds::LbManhattan;
    use crate::reduce::AvgReducer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    #[test]
    fn scan_ranking_is_sorted_and_complete() {
        let (grid, db) = setup(50);
        let source = ScanSource::new(&db, LbManhattan::new(&grid.cost_matrix()));
        let q = db.get(0).to_histogram();
        let mut cursor = source.ranking(&q).unwrap();
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((_, d)) = cursor.next().unwrap() {
            assert!(d >= prev);
            prev = d;
            count += 1;
        }
        assert_eq!(count, 50);
        assert_eq!(cursor.cost().filter_evaluations, 50);
    }

    #[test]
    fn scan_range_matches_manual_filter() {
        let (grid, db) = setup(40);
        let filter = LbManhattan::new(&grid.cost_matrix());
        let source = ScanSource::new(&db, filter.clone());
        let q = db.get(3).to_histogram();
        let eps = 0.05;
        let (hits, cost) = source.range(&q, eps).unwrap();
        let expect: Vec<usize> = db
            .iter()
            .filter(|(_, h)| filter.distance(&q, &h.to_histogram()) <= eps)
            .map(|(id, _)| id)
            .collect();
        let got: Vec<usize> = hits.iter().map(|(id, _)| *id).collect();
        assert_eq!(got, expect);
        assert_eq!(cost.filter_evaluations, 40);
    }

    #[test]
    fn rtree_source_agrees_with_scan_over_reduced_distance() {
        let (grid, db) = setup(60);
        let reducer = AvgReducer::new(grid.centroids().to_vec());
        let source = RtreeSource::build(&db, reducer);
        let q = db.get(5).to_histogram();

        // Ranking must be sorted and complete.
        let mut cursor = source.ranking(&q).unwrap();
        let mut seen = Vec::new();
        let mut prev = f64::NEG_INFINITY;
        while let Some((id, d)) = cursor.next().unwrap() {
            assert!(d >= prev - 1e-12);
            prev = d;
            seen.push(id);
        }
        assert_eq!(seen.len(), 60);
        assert!(cursor.cost().node_accesses > 0);

        // Range must agree with a brute-force reduced-distance scan.
        let reducer = AvgReducer::new(grid.centroids().to_vec());
        let metric = reducer.metric();
        let qk = reducer.key(&q);
        let eps = 0.1;
        let (hits, _) = source.range(&q, eps).unwrap();
        let mut got: Vec<usize> = hits.iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = db
            .iter()
            .filter(|(_, h)| {
                earthmover_rtree::PointMetric::distance(
                    &metric,
                    &qk,
                    &reducer.key(&h.to_histogram()),
                ) <= eps
            })
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn failing_source_errors_as_configured() {
        let (grid, db) = setup(20);
        let q = db.get(0).to_histogram();

        let inner = ScanSource::new(&db, LbManhattan::new(&grid.cost_matrix()));
        let broken = FailingSource::new(inner, 0, "injected");
        assert!(matches!(
            broken.ranking(&q),
            Err(PipelineError::Source { .. })
        ));
        assert!(broken.range(&q, 1.0).is_err());

        let inner = ScanSource::new(&db, LbManhattan::new(&grid.cost_matrix()));
        let flaky = FailingSource::new(inner, 3, "injected");
        let mut cursor = flaky.ranking(&q).unwrap();
        for _ in 0..3 {
            assert!(cursor.next().unwrap().is_some());
        }
        assert!(matches!(cursor.next(), Err(PipelineError::Source { .. })));
    }
}
