//! The multistep retrieval algorithms of §3 (and §4.7) of the paper.

use super::source::CandidateSource;
use crate::db::HistogramDb;
use crate::deadline::{Deadline, DEADLINE_NOTE};
use crate::error::PipelineError;
use crate::histogram::Histogram;
use crate::lower_bounds::{DistanceKernel, DistanceMeasure};
use crate::stats::{stage, QueryStats};
use earthmover_obs as obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Marks `stats` as cut short by its deadline (flag + degradation note).
fn expire(stats: &mut QueryStats) {
    stats.deadline_expired = true;
    stats.record_degradation_once(DEADLINE_NOTE);
}

/// Runs `f`, adding its wall-clock time to `acc`. The per-stage timing
/// backbone: cheap enough (two monotonic clock reads) to wrap individual
/// filter evaluations, whose cost is dominated by the distance math.
#[inline]
fn timed<T>(acc: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    *acc += start.elapsed();
    out
}

/// The outcome of a multistep query: result objects with their exact
/// distances (ascending), plus the work performed.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// `(object id, exact distance)` pairs sorted by ascending distance
    /// (ties by id).
    pub items: Vec<(usize, f64)>,
    /// Work counters and timing.
    pub stats: QueryStats,
}

/// Max-heap entry over `(distance, id)` used to maintain the current
/// k-nearest candidates.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    id: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.id.cmp(&other.id))
    }
}

fn sort_items(mut items: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
    items.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    items
}

/// ε-range query: `{ o ∈ DB : dist_exact(q, o) ≤ ε }`.
///
/// The candidate source pre-selects with its (lower-bounding) filter at
/// the same ε; each intermediate filter then prunes candidates whose
/// bound already exceeds ε; survivors are refined with the exact
/// distance. Completeness follows from the lower-bounding lemma of §3.3.
pub fn range_query(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    epsilon: f64,
    intermediates: &[&dyn DistanceMeasure],
    exact: &dyn DistanceMeasure,
) -> Result<QueryResult, PipelineError> {
    range_query_within(
        source,
        db,
        q,
        epsilon,
        intermediates,
        exact,
        Deadline::none(),
    )
}

/// [`range_query`] under a wall-clock budget. When `deadline` expires the
/// refinement loop stops where it is and the result set built so far is
/// returned, with [`QueryStats::deadline_expired`] set and a degradation
/// note recorded. Distances in a partial result are still exact; objects
/// never reached are simply absent.
pub fn range_query_within(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    epsilon: f64,
    intermediates: &[&dyn DistanceMeasure],
    exact: &dyn DistanceMeasure,
    deadline: Deadline,
) -> Result<QueryResult, PipelineError> {
    let mut span = obs::span!("range_query", epsilon = epsilon);
    let start = Instant::now();
    let mut stats = QueryStats {
        db_size: db.len(),
        ..Default::default()
    };

    let mut source_time = Duration::ZERO;
    let (candidates, cost) = timed(&mut source_time, || source.range(q, epsilon))?;
    stats.add_filter_evaluations(source.name(), cost.filter_evaluations);
    stats.node_accesses += cost.node_accesses;

    // Compile every measure against the query once; candidates are then
    // evaluated straight off their arena rows.
    let kernels: Vec<Box<dyn DistanceKernel + '_>> =
        intermediates.iter().map(|f| f.prepare(q)).collect();
    let exact_kernel = exact.prepare(q);

    let mut filter_times: Vec<Duration> = vec![Duration::ZERO; intermediates.len()];
    let mut exact_time = Duration::ZERO;
    let mut items = Vec::new();
    'candidates: for (id, _) in candidates {
        if deadline.expired() {
            expire(&mut stats);
            break;
        }
        let h = db.try_row(id)?;
        for ((fi, filter), kernel) in intermediates.iter().enumerate().zip(&kernels) {
            stats.add_filter_evaluations(filter.name(), 1);
            if timed(&mut filter_times[fi], || kernel.eval(h.bins())) > epsilon {
                continue 'candidates;
            }
        }
        stats.exact_evaluations += 1;
        let (d, note) = timed(&mut exact_time, || exact_kernel.try_eval_noted(h.bins()))?;
        if let Some(note) = note {
            stats.record_degradation_once(note);
        }
        if d <= epsilon {
            items.push((id, d));
        }
    }

    stats.add_stage_elapsed(stage::CANDIDATES, source_time);
    for (filter, t) in intermediates.iter().zip(filter_times) {
        stats.add_stage_elapsed(filter.name(), t);
    }
    stats.add_stage_elapsed(stage::EXACT, exact_time);

    let items = sort_items(items);
    stats.results = items.len() as u64;
    stats.set_elapsed(start.elapsed());
    span.record("exact_evaluations", stats.exact_evaluations as f64);
    span.record("results", stats.results as f64);
    Ok(QueryResult { items, stats })
}

/// GEMINI k-NN (Faloutsos et al., §3.2 of the paper):
///
/// 1. fetch the `k` nearest objects *by filter distance*,
/// 2. refine them exactly; the largest exact distance becomes `ε'`,
/// 3. run a filter range query with `ε'` and refine every candidate.
///
/// Correct and complete, but `ε'` never shrinks once set — the
/// inefficiency the optimal algorithm removes.
pub fn gemini_knn(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    exact: &dyn DistanceMeasure,
) -> Result<QueryResult, PipelineError> {
    gemini_knn_within(source, db, q, k, exact, Deadline::none())
}

/// [`gemini_knn`] under a wall-clock budget. An expired deadline stops
/// refinement between candidates; whatever has been refined so far is
/// ranked and truncated to `k`, with [`QueryStats::deadline_expired`]
/// set. A partial GEMINI answer is a best-effort k-NN estimate: reported
/// distances are exact, but an unrefined candidate could have displaced a
/// reported one.
pub fn gemini_knn_within(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    exact: &dyn DistanceMeasure,
    deadline: Deadline,
) -> Result<QueryResult, PipelineError> {
    let mut span = obs::span!("gemini_knn", k = k);
    let start = Instant::now();
    let mut stats = QueryStats {
        db_size: db.len(),
        ..Default::default()
    };
    if k == 0 || db.is_empty() {
        stats.set_elapsed(start.elapsed());
        return Ok(QueryResult {
            items: Vec::new(),
            stats,
        });
    }

    let mut source_time = Duration::ZERO;
    let mut exact_time = Duration::ZERO;
    let exact_kernel = exact.prepare(q);

    // Step 1: k candidates by filter distance.
    let mut cursor = timed(&mut source_time, || source.ranking(q))?;
    let mut primaries = Vec::with_capacity(k);
    while primaries.len() < k {
        match timed(&mut source_time, || cursor.next())? {
            Some((id, _)) => primaries.push(id),
            None => break,
        }
    }
    let cost = cursor.cost();
    stats.add_filter_evaluations(source.name(), cost.filter_evaluations);
    stats.node_accesses += cost.node_accesses;

    // Step 2: exact distances of the primaries define ε'.
    let mut evaluated: Vec<(usize, f64)> = Vec::new();
    let mut epsilon = 0.0f64;
    for &id in &primaries {
        if deadline.expired() {
            expire(&mut stats);
            break;
        }
        stats.exact_evaluations += 1;
        let row = db.try_row(id)?;
        let (d, note) = timed(&mut exact_time, || exact_kernel.try_eval_noted(row.bins()))?;
        if let Some(note) = note {
            stats.record_degradation_once(note);
        }
        epsilon = epsilon.max(d);
        evaluated.push((id, d));
    }

    // Step 3: filter range query at ε', refine everything not yet
    // refined. Skipped entirely once the deadline has fired — ε' from a
    // partial step 2 would make the extra work meaningless anyway.
    if !stats.deadline_expired {
        let (candidates, cost) = timed(&mut source_time, || source.range(q, epsilon))?;
        stats.add_filter_evaluations(source.name(), cost.filter_evaluations);
        stats.node_accesses += cost.node_accesses;
        for (id, _) in candidates {
            if evaluated.iter().any(|(e, _)| *e == id) {
                continue;
            }
            if deadline.expired() {
                expire(&mut stats);
                break;
            }
            stats.exact_evaluations += 1;
            let row = db.try_row(id)?;
            let (d, note) = timed(&mut exact_time, || exact_kernel.try_eval_noted(row.bins()))?;
            if let Some(note) = note {
                stats.record_degradation_once(note);
            }
            evaluated.push((id, d));
        }
    }

    stats.add_stage_elapsed(stage::CANDIDATES, source_time);
    stats.add_stage_elapsed(stage::EXACT, exact_time);

    let mut items = sort_items(evaluated);
    items.truncate(k);
    stats.results = items.len() as u64;
    stats.set_elapsed(start.elapsed());
    span.record("exact_evaluations", stats.exact_evaluations as f64);
    Ok(QueryResult { items, stats })
}

/// Optimal multistep k-NN (Seidl & Kriegel, SIGMOD 1998).
///
/// Candidates arrive from the source in nondecreasing filter-distance
/// order. Each is screened against the intermediate filters, refined
/// exactly, and the pruning radius `ε'` (the current k-th best exact
/// distance) *shrinks as refinements happen*. The loop stops as soon as
/// the next filter distance exceeds `ε'` — provably the minimum number of
/// exact-distance computations any complete multistep algorithm can do
/// with this filter.
pub fn optimal_knn(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    intermediates: &[&dyn DistanceMeasure],
    exact: &dyn DistanceMeasure,
) -> Result<QueryResult, PipelineError> {
    optimal_knn_within(source, db, q, k, intermediates, exact, Deadline::none())
}

/// [`optimal_knn`] under a wall-clock budget. An expired deadline stops
/// the ranking/refinement loop; the current k-best heap is returned as a
/// best-effort partial answer with [`QueryStats::deadline_expired`] set.
/// Because candidates arrive in nondecreasing filter-distance order, the
/// partial answer is exactly what the algorithm would report if the
/// database ended at the cut — the natural anytime behavior of the
/// optimal multistep algorithm.
pub fn optimal_knn_within(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    intermediates: &[&dyn DistanceMeasure],
    exact: &dyn DistanceMeasure,
    deadline: Deadline,
) -> Result<QueryResult, PipelineError> {
    optimal_knn_relaxed_within(source, db, q, k, 0.0, intermediates, exact, deadline)
}

/// ε-relaxed optimal multistep k-NN — the approximate tier's refinement
/// loop (see [`crate::sketch_tier::RetrievalMode::Approximate`]).
///
/// Identical to [`optimal_knn_within`] except that the stream-stop and
/// intermediate-filter prune conditions test against
/// `ε' / (1 + relax)` instead of the current k-th best distance `ε'`. A
/// candidate is only skipped when its *lower bound* exceeds
/// `ε' / (1 + relax)`, i.e. when its exact distance is provably larger
/// than `d_k(final) / (1 + relax)` (the pruning radius only shrinks as
/// refinement proceeds). Every reported distance is therefore at most
/// `(1 + relax)` times the true k-th nearest distance, while the looser
/// cutoff stops the stream earlier and prunes more candidates before
/// exact-EMD refinement. Reported distances are still exact EMDs.
///
/// `relax = 0.0` reproduces [`optimal_knn_within`] bit for bit (the
/// threshold divides by exactly 1.0); a non-finite or negative `relax`
/// is treated as `0.0`.
#[allow(clippy::too_many_arguments)]
pub fn optimal_knn_relaxed_within(
    source: &dyn CandidateSource,
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    relax: f64,
    intermediates: &[&dyn DistanceMeasure],
    exact: &dyn DistanceMeasure,
    deadline: Deadline,
) -> Result<QueryResult, PipelineError> {
    let relax = if relax.is_finite() && relax > 0.0 {
        relax
    } else {
        0.0
    };
    let mut span = obs::span!("optimal_knn", k = k, relax = relax);
    let start = Instant::now();
    let mut stats = QueryStats {
        db_size: db.len(),
        ..Default::default()
    };
    if k == 0 || db.is_empty() {
        stats.set_elapsed(start.elapsed());
        return Ok(QueryResult {
            items: Vec::new(),
            stats,
        });
    }

    let mut source_time = Duration::ZERO;
    let mut filter_times: Vec<Duration> = vec![Duration::ZERO; intermediates.len()];
    let mut exact_time = Duration::ZERO;

    // One query-compiled kernel per measure, shared by every candidate.
    let kernels: Vec<Box<dyn DistanceKernel + '_>> =
        intermediates.iter().map(|f| f.prepare(q)).collect();
    let exact_kernel = exact.prepare(q);

    let mut cursor = timed(&mut source_time, || source.ranking(q))?;
    // Max-heap of the best k exact distances seen so far.
    let mut best: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);

    'stream: while let Some((id, filter_dist)) = timed(&mut source_time, || cursor.next())? {
        if deadline.expired() {
            expire(&mut stats);
            break;
        }
        let full = best.len() == k;
        // `full` guarantees the heap is nonempty (k > 0 checked above).
        let epsilon = match best.peek() {
            Some(top) if full => top.dist,
            _ => f64::INFINITY,
        };
        // Relaxed pruning radius: with relax = 0 this is exactly ε'.
        let threshold = epsilon / (1.0 + relax);
        if full && filter_dist > threshold {
            break; // no remaining object can improve the result by > (1+relax)
        }
        let h = db.try_row(id)?;
        if full {
            for ((fi, filter), kernel) in intermediates.iter().enumerate().zip(&kernels) {
                stats.add_filter_evaluations(filter.name(), 1);
                if timed(&mut filter_times[fi], || kernel.eval(h.bins())) > threshold {
                    continue 'stream;
                }
            }
        }
        stats.exact_evaluations += 1;
        let (d, note) = timed(&mut exact_time, || exact_kernel.try_eval_noted(h.bins()))?;
        if let Some(note) = note {
            stats.record_degradation_once(note);
        }
        if !full {
            best.push(HeapEntry { dist: d, id });
        } else if d < epsilon || (d == epsilon && best.peek().is_some_and(|top| id < top.id)) {
            best.pop();
            best.push(HeapEntry { dist: d, id });
        }
    }

    let cost = cursor.cost();
    stats.add_filter_evaluations(source.name(), cost.filter_evaluations);
    stats.node_accesses += cost.node_accesses;

    stats.add_stage_elapsed(stage::CANDIDATES, source_time);
    for (filter, t) in intermediates.iter().zip(filter_times) {
        stats.add_stage_elapsed(filter.name(), t);
    }
    stats.add_stage_elapsed(stage::EXACT, exact_time);

    let items = sort_items(best.into_iter().map(|e| (e.id, e.dist)).collect());
    stats.results = items.len() as u64;
    stats.set_elapsed(start.elapsed());
    span.record("exact_evaluations", stats.exact_evaluations as f64);
    Ok(QueryResult { items, stats })
}

/// The baseline the paper compares against: a sequential scan evaluating
/// the exact distance for every database object.
pub fn linear_scan_knn(
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    exact: &dyn DistanceMeasure,
) -> Result<QueryResult, PipelineError> {
    linear_scan_knn_within(db, q, k, exact, Deadline::none())
}

/// [`linear_scan_knn`] under a wall-clock budget. An expired deadline
/// stops the scan; the k-best heap over the scanned prefix is returned
/// with [`QueryStats::deadline_expired`] set.
pub fn linear_scan_knn_within(
    db: &HistogramDb,
    q: &Histogram,
    k: usize,
    exact: &dyn DistanceMeasure,
    deadline: Deadline,
) -> Result<QueryResult, PipelineError> {
    let mut span = obs::span!("linear_scan_knn", k = k);
    let start = Instant::now();
    let mut stats = QueryStats {
        db_size: db.len(),
        ..Default::default()
    };
    let mut exact_time = Duration::ZERO;
    let exact_kernel = exact.prepare(q);
    let mut best: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for id in 0..db.len() {
        if deadline.expired() {
            expire(&mut stats);
            break;
        }
        let h = db.try_row(id)?;
        stats.exact_evaluations += 1;
        let (d, note) = timed(&mut exact_time, || exact_kernel.try_eval_noted(h.bins()))?;
        if let Some(note) = note {
            stats.record_degradation_once(note);
        }
        best.push(HeapEntry { dist: d, id });
        if best.len() > k {
            best.pop();
        }
    }
    stats.add_stage_elapsed(stage::EXACT, exact_time);
    let items = sort_items(best.into_iter().map(|e| (e.id, e.dist)).collect());
    stats.results = items.len() as u64;
    stats.set_elapsed(start.elapsed());
    span.record("exact_evaluations", stats.exact_evaluations as f64);
    Ok(QueryResult { items, stats })
}

#[cfg(test)]
mod tests {
    use super::super::source::ScanSource;
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::lower_bounds::{ExactEmd, LbIm, LbManhattan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize, seed: u64) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    #[test]
    fn optimal_knn_matches_linear_scan() {
        let (grid, db) = setup(80, 11);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = random_histogram(&mut StdRng::seed_from_u64(5000), grid.num_bins());
        for k in [1, 3, 10] {
            let multi = optimal_knn(&source, &db, &q, k, &[], &exact).unwrap();
            let brute = linear_scan_knn(&db, &q, k, &exact).unwrap();
            let md: Vec<f64> = multi.items.iter().map(|(_, d)| *d).collect();
            let bd: Vec<f64> = brute.items.iter().map(|(_, d)| *d).collect();
            assert_eq!(md.len(), bd.len());
            for (a, b) in md.iter().zip(&bd) {
                assert!((a - b).abs() < 1e-9, "k={k}: {md:?} vs {bd:?}");
            }
            // The whole point: fewer exact evaluations than the scan.
            assert!(multi.stats.exact_evaluations <= brute.stats.exact_evaluations);
        }
    }

    #[test]
    fn gemini_knn_matches_linear_scan() {
        let (grid, db) = setup(60, 12);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = random_histogram(&mut StdRng::seed_from_u64(6000), grid.num_bins());
        for k in [1, 5] {
            let multi = gemini_knn(&source, &db, &q, k, &exact).unwrap();
            let brute = linear_scan_knn(&db, &q, k, &exact).unwrap();
            let md: Vec<f64> = multi.items.iter().map(|(_, d)| *d).collect();
            let bd: Vec<f64> = brute.items.iter().map(|(_, d)| *d).collect();
            for (a, b) in md.iter().zip(&bd) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn optimal_never_refines_more_than_gemini() {
        // The optimality theorem: candidate count of the optimal algorithm
        // is minimal, so in particular ≤ GEMINI's.
        let (grid, db) = setup(100, 13);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        for seed in 0..5 {
            let q = random_histogram(&mut StdRng::seed_from_u64(7000 + seed), grid.num_bins());
            let opt = optimal_knn(&source, &db, &q, 5, &[], &exact).unwrap();
            let gem = gemini_knn(&source, &db, &q, 5, &exact).unwrap();
            assert!(
                opt.stats.exact_evaluations <= gem.stats.exact_evaluations,
                "seed {seed}: optimal {} > gemini {}",
                opt.stats.exact_evaluations,
                gem.stats.exact_evaluations
            );
        }
    }

    #[test]
    fn range_query_matches_brute_force() {
        let (grid, db) = setup(70, 14);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(8000), grid.num_bins());
        for eps in [0.02, 0.08, 0.2] {
            let result = range_query(&source, &db, &q, eps, &[&im], &exact).unwrap();
            let mut expect: Vec<(usize, f64)> = db
                .iter()
                .map(|(id, h)| (id, exact.distance(&q, &h.to_histogram())))
                .filter(|(_, d)| *d <= eps)
                .collect();
            expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            assert_eq!(result.items.len(), expect.len(), "eps {eps}");
            for ((ida, da), (idb, db_)) in result.items.iter().zip(&expect) {
                assert_eq!(ida, idb);
                assert!((da - db_).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn intermediate_filter_reduces_exact_evaluations() {
        let (grid, db) = setup(120, 15);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(9000), grid.num_bins());
        let without = optimal_knn(&source, &db, &q, 5, &[], &exact).unwrap();
        let with = optimal_knn(&source, &db, &q, 5, &[&im], &exact).unwrap();
        // Same results...
        let a: Vec<f64> = without.items.iter().map(|(_, d)| *d).collect();
        let b: Vec<f64> = with.items.iter().map(|(_, d)| *d).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // ...with no more (usually fewer) exact refinements.
        assert!(with.stats.exact_evaluations <= without.stats.exact_evaluations);
    }

    #[test]
    fn k_zero_and_empty_db() {
        let (grid, db) = setup(10, 16);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = db.get(0).to_histogram();
        assert!(optimal_knn(&source, &db, &q, 0, &[], &exact)
            .unwrap()
            .items
            .is_empty());
        assert!(gemini_knn(&source, &db, &q, 0, &exact)
            .unwrap()
            .items
            .is_empty());

        let empty = HistogramDb::new(grid.num_bins());
        let esource = ScanSource::new(&empty, LbManhattan::new(&cost));
        assert!(optimal_knn(&esource, &empty, &q, 3, &[], &exact)
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn k_larger_than_db_returns_everything() {
        let (grid, db) = setup(7, 17);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = db.get(0).to_histogram();
        let r = optimal_knn(&source, &db, &q, 50, &[], &exact).unwrap();
        assert_eq!(r.items.len(), 7);
        let g = gemini_knn(&source, &db, &q, 50, &exact).unwrap();
        assert_eq!(g.items.len(), 7);
    }

    #[test]
    fn stage_timings_cover_every_pipeline_stage() {
        let (grid, db) = setup(80, 19);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(9500), grid.num_bins());
        let r = optimal_knn(&source, &db, &q, 5, &[&im], &exact).unwrap();
        let s = &r.stats;
        // All three stages appear, and exact refinement took real time.
        assert!(s.stage_time(stage::CANDIDATES).is_some());
        assert!(s.stage_time("LB_IM").is_some());
        assert!(s.stage_time(stage::EXACT).unwrap() > Duration::ZERO);
        // The breakdown never exceeds the total.
        let stage_sum: Duration = s.stage_elapsed.iter().map(|(_, d)| *d).sum();
        assert!(stage_sum <= s.elapsed, "{stage_sum:?} > {:?}", s.elapsed);
        assert_eq!(s.elapsed_max, s.elapsed, "single query: max == total");
    }

    /// An exact measure that reports a solver-degradation note on every
    /// pair — exercises the rung plumbing without needing a pathological
    /// transportation instance.
    struct DegradedExact(ExactEmd);
    impl DistanceMeasure for DegradedExact {
        fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
            self.0.distance(x, y)
        }
        fn try_distance_noted(
            &self,
            x: &Histogram,
            y: &Histogram,
        ) -> Result<(f64, Option<&'static str>), PipelineError> {
            self.0
                .try_distance(x, y)
                .map(|d| (d, Some("stub: solver recovered via Bland's rule")))
        }
        fn name(&self) -> &'static str {
            "EMD"
        }
    }

    #[test]
    fn solver_rung_notes_surface_once_in_degradations() {
        let (grid, db) = setup(40, 20);
        let cost = grid.cost_matrix();
        let exact = DegradedExact(ExactEmd::new(cost.clone()));
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = random_histogram(&mut StdRng::seed_from_u64(9600), grid.num_bins());
        for result in [
            optimal_knn(&source, &db, &q, 5, &[], &exact).unwrap(),
            gemini_knn(&source, &db, &q, 5, &exact).unwrap(),
            range_query(&source, &db, &q, 0.2, &[], &exact).unwrap(),
            linear_scan_knn(&db, &q, 5, &exact).unwrap(),
        ] {
            assert!(result.stats.exact_evaluations > 1);
            assert_eq!(
                result.stats.degradations,
                vec!["stub: solver recovered via Bland's rule".to_string()],
                "many degraded evaluations must collapse to one note"
            );
        }
    }

    #[test]
    fn relaxed_with_zero_slack_is_the_exact_algorithm() {
        let (grid, db) = setup(90, 21);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(9700), grid.num_bins());
        let strict = optimal_knn(&source, &db, &q, 5, &[&im], &exact).unwrap();
        let relaxed =
            optimal_knn_relaxed_within(&source, &db, &q, 5, 0.0, &[&im], &exact, Deadline::none())
                .unwrap();
        assert_eq!(strict.items, relaxed.items);
        assert_eq!(
            strict.stats.exact_evaluations,
            relaxed.stats.exact_evaluations
        );
        // Garbage slack values degrade to exact, not to nonsense.
        let nan = optimal_knn_relaxed_within(
            &source,
            &db,
            &q,
            5,
            f64::NAN,
            &[&im],
            &exact,
            Deadline::none(),
        )
        .unwrap();
        assert_eq!(strict.items, nan.items);
    }

    #[test]
    fn relaxed_knn_honors_the_distance_ratio_guarantee() {
        let (grid, db) = setup(100, 22);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let k = 5;
        for seed in 0..4 {
            let q = random_histogram(&mut StdRng::seed_from_u64(9800 + seed), grid.num_bins());
            let truth = linear_scan_knn(&db, &q, k, &exact).unwrap();
            let true_kth = truth.items.last().unwrap().1;
            for relax in [0.25, 0.5, 1.0, 4.0] {
                let r = optimal_knn_relaxed_within(
                    &source,
                    &db,
                    &q,
                    k,
                    relax,
                    &[],
                    &exact,
                    Deadline::none(),
                )
                .unwrap();
                assert_eq!(r.items.len(), k);
                for (_, d) in &r.items {
                    assert!(
                        *d <= (1.0 + relax) * true_kth + 1e-9,
                        "seed {seed} relax {relax}: {d} > (1+eps) * {true_kth}"
                    );
                }
                // More slack never costs more refinements than exact.
                let strict = optimal_knn(&source, &db, &q, k, &[], &exact).unwrap();
                assert!(r.stats.exact_evaluations <= strict.stats.exact_evaluations);
            }
        }
    }

    #[test]
    fn query_in_db_is_its_own_nearest_neighbor() {
        let (grid, db) = setup(30, 18);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = db.get(7).to_histogram();
        let r = optimal_knn(&source, &db, &q, 1, &[], &exact).unwrap();
        assert!(r.items[0].1 < 1e-12);
    }
}
