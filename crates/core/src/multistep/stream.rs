//! Incremental nearest-neighbor streaming with lower-bound escalation.
//!
//! k-NN queries need `k` fixed in advance; *ranking* queries don't: the
//! user keeps pulling "next nearest" until satisfied (the access pattern
//! behind the optimal multistep algorithm, Seidl & Kriegel 1998, and the
//! natural API for interactive browsing). [`NearestStream`] provides this
//! over the same machinery as the batch algorithms:
//!
//! * candidates arrive from a [`CandidateSource`] ranking in
//!   nondecreasing *filter*-distance order;
//! * a priority queue holds items keyed by their **best known lower
//!   bound**; popping an item escalates it one level — first through each
//!   intermediate filter (e.g. `LB_IM`), finally to the exact EMD;
//! * an item popped at the *exact* level is emitted: every other item's
//!   key is a lower bound of its true distance, so nothing still queued
//!   (or still in the source) can be nearer.
//!
//! The stream therefore refines exactly as much as the prefix the caller
//! consumes requires — pulling 5 results costs about as much as a 5-NN
//! query, and the full drain costs no more than a sequential scan.

use super::source::{CandidateSource, RankingCursor};
use crate::db::HistogramDb;
use crate::error::PipelineError;
use crate::histogram::Histogram;
use crate::lower_bounds::{DistanceKernel, DistanceMeasure};
use crate::stats::{stage, QueryStats};
use earthmover_obs as obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Escalation state of a queued candidate: how many bound levels it has
/// passed (0 = source filter only; `intermediates.len()` = next is exact).
struct Item {
    /// Best known lower bound of the exact distance (or the exact
    /// distance itself once `level == exact_level`).
    key: f64,
    id: usize,
    level: usize,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.id == other.id
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by key (BinaryHeap is a max-heap), ties by id.
        // total_cmp keeps the comparator a total order even if a NaN
        // distance ever slips in (a filter bug must not corrupt the heap).
        other.key.total_cmp(&self.key).then(other.id.cmp(&self.id))
    }
}

/// A lazy stream of `(object id, exact distance)` pairs in nondecreasing
/// exact-distance order. Create with [`nearest_stream`].
///
/// Items are `Result`s: a source or solver failure mid-iteration is
/// yielded once as an `Err`, after which the stream is exhausted.
pub struct NearestStream<'a> {
    db: &'a HistogramDb,
    source_name: String,
    cursor: Box<dyn RankingCursor + 'a>,
    /// The cursor item read but not yet enqueued.
    pending: Option<(usize, f64)>,
    source_exhausted: bool,
    /// Set after yielding an `Err`; the stream then terminates.
    failed: bool,
    /// Intermediate filters, compiled against the query once at stream
    /// construction, paired with their display names for stats.
    kernels: Vec<(&'a str, Box<dyn DistanceKernel + 'a>)>,
    exact_kernel: Box<dyn DistanceKernel + 'a>,
    heap: BinaryHeap<Item>,
    stats: QueryStats,
    /// Open for the whole stream lifetime; closes (and reports) on drop.
    _span: obs::Span,
}

/// Starts an incremental exact-distance ranking of the database around
/// `q`. See the module docs for the algorithm and its guarantee.
///
/// Errors if the candidate source cannot start a ranking (e.g. a corrupt
/// index); failures after the stream has started are yielded as `Err`
/// items instead.
pub fn nearest_stream<'a>(
    source: &'a dyn CandidateSource,
    db: &'a HistogramDb,
    q: &'a Histogram,
    intermediates: Vec<&'a dyn DistanceMeasure>,
    exact: &'a dyn DistanceMeasure,
) -> Result<NearestStream<'a>, PipelineError> {
    Ok(NearestStream {
        db,
        source_name: source.name().to_string(),
        cursor: source.ranking(q)?,
        pending: None,
        source_exhausted: false,
        failed: false,
        kernels: intermediates
            .into_iter()
            .map(|f| (f.name(), f.prepare(q)))
            .collect(),
        exact_kernel: exact.prepare(q),
        heap: BinaryHeap::new(),
        stats: QueryStats {
            db_size: db.len(),
            ..Default::default()
        },
        _span: obs::span!("nearest_stream"),
    })
}

impl<'a> NearestStream<'a> {
    /// Work counters accumulated so far (source costs are folded in when
    /// the stream is dropped or exhausted; call this after consuming).
    pub fn stats(&self) -> QueryStats {
        let mut stats = self.stats.clone();
        let cost = self.cursor.cost();
        stats.add_filter_evaluations(&self.source_name, cost.filter_evaluations);
        stats.node_accesses += cost.node_accesses;
        stats
    }

    /// Feeds cursor items into the heap while their filter distance does
    /// not exceed the current heap top (they could beat it otherwise).
    fn feed(&mut self) -> Result<(), PipelineError> {
        loop {
            if self.pending.is_none() && !self.source_exhausted {
                let start = Instant::now();
                let next = self.cursor.next();
                self.stats
                    .add_stage_elapsed(stage::CANDIDATES, start.elapsed());
                self.pending = next?;
                if self.pending.is_none() {
                    self.source_exhausted = true;
                }
            }
            let Some((id, fd)) = self.pending else {
                return Ok(());
            };
            let must_enqueue = match self.heap.peek() {
                None => true,
                Some(top) => fd <= top.key,
            };
            if !must_enqueue {
                return Ok(());
            }
            self.heap.push(Item {
                key: fd,
                id,
                level: 0,
            });
            self.pending = None;
        }
    }
}

impl<'a> Iterator for NearestStream<'a> {
    type Item = Result<(usize, f64), PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Err(e) = self.feed() {
                self.failed = true;
                return Some(Err(e));
            }
            let item = self.heap.pop()?;
            let exact_level = self.kernels.len() + 1;
            if item.level == exact_level {
                self.stats.results += 1;
                return Some(Ok((item.id, item.key)));
            }
            // Escalate one bound level. Levels 1..=len are the
            // intermediates; the final level is the exact distance.
            let h = match self.db.try_row(item.id) {
                Ok(h) => h,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let (new_key, new_level) = match self.kernels.get(item.level) {
                Some((name, kernel)) => {
                    self.stats.add_filter_evaluations(name, 1);
                    let start = Instant::now();
                    let d = kernel.eval(h.bins());
                    self.stats.add_stage_elapsed(name, start.elapsed());
                    // A tighter bound never shrinks: keep the max.
                    (d.max(item.key), item.level + 1)
                }
                None => {
                    self.stats.exact_evaluations += 1;
                    let start = Instant::now();
                    let refined = self.exact_kernel.try_eval_noted(h.bins());
                    self.stats.add_stage_elapsed(stage::EXACT, start.elapsed());
                    match refined {
                        Ok((d, note)) => {
                            if let Some(note) = note {
                                self.stats.record_degradation_once(note);
                            }
                            (d, exact_level)
                        }
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
            };
            self.heap.push(Item {
                key: new_key,
                id: item.id,
                level: new_level,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::source::ScanSource;
    use super::super::RtreeSource;
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::lower_bounds::{ExactEmd, LbIm, LbManhattan};
    use crate::reduce::AvgReducer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize, seed: u64) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    #[test]
    fn full_drain_is_the_exact_ranking() {
        let (grid, db) = setup(60, 21);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(999), grid.num_bins());

        let stream = nearest_stream(&source, &db, &q, vec![&im], &exact).unwrap();
        let got: Vec<(usize, f64)> = stream.map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), db.len());
        // Nondecreasing and matching the brute-force distances.
        let mut brute: Vec<f64> = db
            .iter()
            .map(|(_, h)| exact.distance(&q, &h.to_histogram()))
            .collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - brute[i]).abs() < 1e-9, "rank {i}: {d} vs {}", brute[i]);
        }
    }

    #[test]
    fn prefix_matches_knn() {
        let (grid, db) = setup(80, 22);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = random_histogram(&mut StdRng::seed_from_u64(1000), grid.num_bins());
        let knn = super::super::optimal_knn(&source, &db, &q, 7, &[], &exact).unwrap();
        let stream = nearest_stream(&source, &db, &q, vec![], &exact).unwrap();
        let prefix: Vec<(usize, f64)> = stream.take(7).map(|r| r.unwrap()).collect();
        for ((_, a), (_, b)) in prefix.iter().zip(&knn.items) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn laziness_bounds_exact_work() {
        let (grid, db) = setup(400, 23);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);
        let q = random_histogram(&mut StdRng::seed_from_u64(1001), grid.num_bins());

        let mut stream = nearest_stream(&source, &db, &q, vec![&im], &exact).unwrap();
        for _ in 0..5 {
            stream.next();
        }
        let stats = stream.stats();
        assert!(
            stats.exact_evaluations < 400 / 4,
            "pulling 5 results refined {} of 400 objects",
            stats.exact_evaluations
        );
    }

    #[test]
    fn works_over_index_source() {
        let (grid, db) = setup(120, 24);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let im = LbIm::new(&cost);
        let source = RtreeSource::build(&db, AvgReducer::new(grid.centroids().to_vec()));
        let q = random_histogram(&mut StdRng::seed_from_u64(1002), grid.num_bins());
        let stream = nearest_stream(&source, &db, &q, vec![&im], &exact).unwrap();
        let got: Vec<f64> = stream.map(|r| r.unwrap().1).collect();
        let mut brute: Vec<f64> = db
            .iter()
            .map(|(_, h)| exact.distance(&q, &h.to_histogram()))
            .collect();
        brute.sort_by(f64::total_cmp);
        assert_eq!(got.len(), brute.len());
        for (a, b) in got.iter().zip(&brute) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_database() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let db = HistogramDb::new(grid.num_bins());
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let q = random_histogram(&mut StdRng::seed_from_u64(1), grid.num_bins());
        let mut stream = nearest_stream(&source, &db, &q, vec![], &exact).unwrap();
        assert!(stream.next().is_none());
    }

    #[test]
    fn mid_stream_failure_yields_one_error_then_ends() {
        use super::super::source::FailingSource;
        let (grid, db) = setup(30, 25);
        let cost = grid.cost_matrix();
        let exact = ExactEmd::new(cost.clone());
        let inner = ScanSource::new(&db, LbManhattan::new(&cost));
        let source = FailingSource::new(inner, 4, "simulated index corruption");
        let q = random_histogram(&mut StdRng::seed_from_u64(1003), grid.num_bins());
        let mut stream = nearest_stream(&source, &db, &q, vec![], &exact).unwrap();
        let mut saw_err = false;
        for item in stream.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "the injected failure must surface as an Err item");
        assert!(stream.next().is_none(), "a failed stream terminates");
    }
}
