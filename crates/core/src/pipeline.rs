//! The paper's two-phase multistep pipeline, packaged as a query engine.
//!
//! §4.7 of the paper combines three observations into one architecture:
//!
//! 1. indexes only work in low dimensions → run the R-tree on *3-D
//!    reduced keys* (centroid averages, or the top-variance bins of the
//!    weighted Manhattan bound);
//! 2. `LB_IM` is by far the most selective filter but costs `O(n²)` per
//!    pair → run it as a *second* filter over the index candidates only;
//! 3. the exact EMD is run last, over whatever survives.
//!
//! [`QueryEngine`] wires this up with sensible defaults
//! (`LB_Avg` 3-D index → `LB_IM` → EMD, optimal multistep k-NN) while
//! letting every stage be swapped for the configurations the paper's
//! experiments compare. Every stage evaluates its bound through a
//! query-compiled kernel ([`DistanceMeasure::prepare`]): per-query state
//! is hoisted once, and scan-shaped stages run
//! `DistanceKernel::eval_block` straight over the database's columnar
//! arena (see `DESIGN.md` §11).

use crate::db::HistogramDb;
use crate::deadline::Deadline;
use crate::error::PipelineError;
use crate::ground::BinGrid;
use crate::histogram::Histogram;
use crate::lower_bounds::{DistanceMeasure, ExactEmd, LbAvg, LbIm, LbManhattan};
use crate::multistep::{
    gemini_knn_within, optimal_knn_relaxed_within, optimal_knn_within, range_query_within,
    CandidateSource, QueryResult, RtreeSource, ScanSource,
};
use crate::reduce::{AvgReducer, ManhattanReducer};
use crate::sketch_tier::{RetrievalInfo, RetrievalMode, SketchTier, SKETCH_UNAVAILABLE_NOTE};
use earthmover_obs as obs;

/// How the first (candidate-generating) stage is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstStage {
    /// 3-D R-tree over centroid averages (`LB_Avg` as index filter) —
    /// the paper's best configuration.
    AvgIndex,
    /// R-tree over the `dims` highest-variance bins of the weighted
    /// Manhattan bound (`LB_Man` reduced; the paper uses 3 dimensions).
    ManhattanIndex {
        /// Reduced key dimensionality (3 in the paper).
        dims: usize,
    },
    /// Sequential scan with the full-dimensional weighted Manhattan bound.
    ManhattanScan,
    /// Sequential scan with the centroid-averaging bound.
    AvgScan,
    /// Sequential scan with `LB_IM` directly (no cheap pre-filter).
    ImScan,
}

/// Which k-NN multistep algorithm drives the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnAlgorithm {
    /// Optimal multistep (Seidl & Kriegel) — interleaves ranking and
    /// refinement; minimal candidate count.
    #[default]
    Optimal,
    /// Classic GEMINI two-pass k-NN.
    Gemini,
}

enum Stage<'a> {
    AvgIndex(RtreeSource<'a, AvgReducer>),
    ManIndex(RtreeSource<'a, ManhattanReducer>),
    ManScan(ScanSource<'a, LbManhattan>),
    AvgScan(ScanSource<'a, LbAvg>),
    ImScan(ScanSource<'a, LbIm>),
    /// A caller-supplied source (e.g. a persisted index, or a
    /// fault-injecting wrapper in tests).
    Custom(Box<dyn CandidateSource + Send + Sync + 'a>),
}

impl<'a> Stage<'a> {
    fn as_source(&self) -> &dyn CandidateSource {
        match self {
            Stage::AvgIndex(s) => s,
            Stage::ManIndex(s) => s,
            Stage::ManScan(s) => s,
            Stage::AvgScan(s) => s,
            Stage::ImScan(s) => s,
            Stage::Custom(s) => s.as_ref(),
        }
    }
}

/// Configures and builds a [`QueryEngine`].
pub struct EngineBuilder<'a> {
    db: &'a HistogramDb,
    grid: &'a BinGrid,
    first_stage: FirstStage,
    custom_source: Option<Box<dyn CandidateSource + Send + Sync + 'a>>,
    use_im: bool,
    algorithm: KnnAlgorithm,
    sketch: Option<SketchTier>,
}

impl<'a> EngineBuilder<'a> {
    /// Chooses the first filter stage (default: [`FirstStage::AvgIndex`]).
    pub fn first_stage(mut self, stage: FirstStage) -> Self {
        self.first_stage = stage;
        self
    }

    /// Enables or disables the intermediate `LB_IM` filter
    /// (default: enabled — the paper's winning combination).
    pub fn lb_im(mut self, enabled: bool) -> Self {
        self.use_im = enabled;
        self
    }

    /// Selects the k-NN algorithm (default: optimal multistep).
    pub fn algorithm(mut self, algorithm: KnnAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attaches a sketch tier so the engine can serve
    /// [`RetrievalMode::SketchOnly`] queries without refinement. Without
    /// one, sketch-only requests degrade to the exact pipeline and record
    /// [`SKETCH_UNAVAILABLE_NOTE`].
    pub fn sketch(mut self, tier: SketchTier) -> Self {
        self.sketch = Some(tier);
        self
    }

    /// Supplies the first stage directly instead of building one of the
    /// predefined configurations — e.g. a source backed by a persisted
    /// index, or a fault-injecting wrapper in robustness tests. Takes
    /// precedence over [`EngineBuilder::first_stage`].
    ///
    /// The source's filter distance must lower bound the EMD or query
    /// results become incomplete. If the source fails at query time the
    /// engine degrades to a sequential scan, exactly as for the built-in
    /// index stages.
    pub fn custom_source(mut self, source: Box<dyn CandidateSource + Send + Sync + 'a>) -> Self {
        self.custom_source = Some(source);
        self
    }

    /// Builds the engine: derives the cost matrix and filter weights from
    /// the grid, reduces keys, and bulk-loads the index if one was chosen.
    pub fn build(self) -> QueryEngine<'a> {
        let cost = self.grid.cost_matrix();
        assert_eq!(
            cost.len(),
            self.db.dims(),
            "grid bin count must match database dimensionality"
        );
        let exact = ExactEmd::new(cost.clone());
        let im = self.use_im.then(|| LbIm::new(&cost));
        // Index stages bulk-load by iterating the resident arena; a
        // paged database streams blocks through the buffer pool instead,
        // so the index configurations downgrade to the equivalent
        // sequential-scan bound. Results stay exact — the scan uses the
        // same admissible filter, just without the R-tree shortcut.
        let first_stage = if self.db.is_paged() {
            match self.first_stage {
                FirstStage::AvgIndex => FirstStage::AvgScan,
                FirstStage::ManhattanIndex { .. } => FirstStage::ManhattanScan,
                other => other,
            }
        } else {
            self.first_stage
        };
        let stage = if let Some(source) = self.custom_source {
            Stage::Custom(source)
        } else {
            match first_stage {
                FirstStage::AvgIndex => Stage::AvgIndex(RtreeSource::build(
                    self.db,
                    AvgReducer::new(self.grid.centroids().to_vec()),
                )),
                FirstStage::ManhattanIndex { dims } => Stage::ManIndex(RtreeSource::build(
                    self.db,
                    ManhattanReducer::from_db(self.db, &cost, dims),
                )),
                FirstStage::ManhattanScan => {
                    Stage::ManScan(ScanSource::new(self.db, LbManhattan::new(&cost)))
                }
                FirstStage::AvgScan => Stage::AvgScan(ScanSource::new(
                    self.db,
                    LbAvg::new(self.grid.centroids().to_vec()),
                )),
                FirstStage::ImScan => Stage::ImScan(ScanSource::new(self.db, LbIm::new(&cost))),
            }
        };
        // Degradation target: a plain sequential scan over the weighted
        // Manhattan bound. It shares no machinery with the index stages,
        // so an index failure cannot take it down too.
        let fallback = ScanSource::new(self.db, LbManhattan::new(&cost));
        QueryEngine {
            db: self.db,
            exact,
            im,
            stage,
            fallback,
            algorithm: self.algorithm,
            sketch: self.sketch,
        }
    }
}

/// A ready-to-query multistep retrieval engine over a histogram database.
///
/// See the crate-level example for typical usage. Engines borrow the
/// database; build once, query many times.
///
/// # Graceful degradation
///
/// Queries return `Result`s instead of panicking. When the first-stage
/// candidate source fails ([`PipelineError::Source`] — e.g. a corrupt
/// persisted index), the engine transparently re-runs the query on a
/// sequential-scan source and records the event in
/// [`crate::stats::QueryStats::degradations`]; results stay exact because
/// the fallback filter is also a lower bound of the EMD. Exact-distance
/// failures are first retried internally through the solver recovery
/// ladder (see [`ExactEmd`]) and only surface as
/// [`PipelineError::Distance`] when the ladder is exhausted.
pub struct QueryEngine<'a> {
    db: &'a HistogramDb,
    exact: ExactEmd,
    im: Option<LbIm>,
    stage: Stage<'a>,
    /// Sequential-scan source used when `stage` fails at query time.
    fallback: ScanSource<'a, LbManhattan>,
    algorithm: KnnAlgorithm,
    /// Approximate tier serving [`RetrievalMode::SketchOnly`] queries.
    sketch: Option<SketchTier>,
}

impl<'a> QueryEngine<'a> {
    /// Starts building an engine for `db` with ground distances from
    /// `grid`.
    pub fn builder(db: &'a HistogramDb, grid: &'a BinGrid) -> EngineBuilder<'a> {
        EngineBuilder {
            db,
            grid,
            first_stage: FirstStage::AvgIndex,
            custom_source: None,
            use_im: true,
            algorithm: KnnAlgorithm::Optimal,
            sketch: None,
        }
    }

    /// The sketch tier attached at build time, if any.
    pub fn sketch_tier(&self) -> Option<&SketchTier> {
        self.sketch.as_ref()
    }

    /// The exact distance measure the engine refines with.
    pub fn exact(&self) -> &ExactEmd {
        &self.exact
    }

    fn intermediates(&self) -> Vec<&dyn DistanceMeasure> {
        // LB_IM as intermediate filter is skipped when it already *is* the
        // first stage — filtering twice with the same bound does nothing.
        match (&self.stage, &self.im) {
            (Stage::ImScan(_), _) | (_, None) => Vec::new(),
            (_, Some(im)) => vec![im as &dyn DistanceMeasure],
        }
    }

    fn knn_on(
        &self,
        source: &dyn CandidateSource,
        q: &Histogram,
        k: usize,
        deadline: Deadline,
    ) -> Result<QueryResult, PipelineError> {
        match self.algorithm {
            KnnAlgorithm::Optimal => optimal_knn_within(
                source,
                self.db,
                q,
                k,
                &self.intermediates(),
                &self.exact,
                deadline,
            ),
            KnnAlgorithm::Gemini => gemini_knn_within(source, self.db, q, k, &self.exact, deadline),
        }
    }

    /// Annotates a fallback result with the degradation that caused it.
    fn record_degradation(result: &mut QueryResult, stage: &str, reason: &str) {
        result.stats.degradations.push(format!(
            "first stage '{stage}' failed ({reason}); degraded to sequential scan"
        ));
    }

    /// k-nearest-neighbor query with the configured pipeline.
    ///
    /// On a first-stage source failure the query is transparently re-run
    /// on a sequential scan (see the type docs); only exact-distance
    /// failures that survive the solver recovery ladder surface as errors.
    pub fn knn(&self, q: &Histogram, k: usize) -> Result<QueryResult, PipelineError> {
        self.knn_within(q, k, Deadline::none())
    }

    /// [`QueryEngine::knn`] under a wall-clock budget. When `deadline`
    /// expires mid-query the best-effort partial result accumulated so
    /// far comes back with
    /// [`crate::stats::QueryStats::deadline_expired`] set and a
    /// degradation note recorded — the serving layer turns this into a
    /// typed `DeadlineExceeded` response instead of hanging a connection.
    /// The scan fallback on a first-stage failure runs under the *same*
    /// deadline, so a failure cannot double the budget.
    pub fn knn_within(
        &self,
        q: &Histogram,
        k: usize,
        deadline: Deadline,
    ) -> Result<QueryResult, PipelineError> {
        let mut span = obs::span!("engine_knn", k = k);
        match self.knn_on(self.stage.as_source(), q, k, deadline) {
            Err(PipelineError::Source { stage, reason }) => {
                span.record("degraded", 1.0);
                let mut result = self.knn_on(&self.fallback, q, k, deadline)?;
                Self::record_degradation(&mut result, &stage, &reason);
                Ok(result)
            }
            other => other,
        }
    }

    /// [`QueryEngine::knn`] on an explicit recall/latency tier.
    ///
    /// * [`RetrievalMode::Exact`] — the configured pipeline, recall 1.0.
    /// * [`RetrievalMode::Approximate`] — ε-relaxed optimal multistep
    ///   refinement (regardless of the configured [`KnnAlgorithm`]):
    ///   every reported neighbor is within `(1 + ε)` of the true k-th
    ///   nearest distance, with fewer exact-EMD refinements.
    /// * [`RetrievalMode::SketchOnly`] — answered straight from the
    ///   attached sketch tier, skipping refinement; degrades to exact
    ///   with [`SKETCH_UNAVAILABLE_NOTE`] when no tier is attached.
    ///
    /// Unlike the mode-less API, the result's
    /// [`crate::stats::QueryStats::retrieval`] is always populated.
    pub fn knn_mode(
        &self,
        q: &Histogram,
        k: usize,
        mode: RetrievalMode,
    ) -> Result<QueryResult, PipelineError> {
        self.knn_mode_within(q, k, mode, Deadline::none())
    }

    /// [`QueryEngine::knn_mode`] under a wall-clock budget; partial-result
    /// semantics as for [`QueryEngine::knn_within`].
    pub fn knn_mode_within(
        &self,
        q: &Histogram,
        k: usize,
        mode: RetrievalMode,
        deadline: Deadline,
    ) -> Result<QueryResult, PipelineError> {
        match mode {
            RetrievalMode::Exact => {
                let mut result = self.knn_within(q, k, deadline)?;
                result.stats.retrieval = Some(RetrievalInfo { mode, recall: 1.0 });
                Ok(result)
            }
            RetrievalMode::Approximate { epsilon } => {
                let mut span = obs::span!("engine_knn", k = k);
                span.record("relax", epsilon);
                let run = |source: &dyn CandidateSource| {
                    optimal_knn_relaxed_within(
                        source,
                        self.db,
                        q,
                        k,
                        epsilon,
                        &self.intermediates(),
                        &self.exact,
                        deadline,
                    )
                };
                let mut result = match run(self.stage.as_source()) {
                    Err(PipelineError::Source { stage, reason }) => {
                        span.record("degraded", 1.0);
                        let mut result = run(&self.fallback)?;
                        Self::record_degradation(&mut result, &stage, &reason);
                        result
                    }
                    other => other?,
                };
                // The distance-ratio guarantee as a worst-case recall
                // figure; negative/non-finite slack degrades to exact.
                let slack = if epsilon.is_finite() && epsilon > 0.0 {
                    epsilon
                } else {
                    0.0
                };
                result.stats.retrieval = Some(RetrievalInfo {
                    mode,
                    recall: 1.0 / (1.0 + slack),
                });
                Ok(result)
            }
            RetrievalMode::SketchOnly => match &self.sketch {
                Some(tier) => {
                    let (items, stats) = tier.knn_with_stats(q, k, deadline)?;
                    Ok(QueryResult { items, stats })
                }
                None => {
                    let mut result = self.knn_within(q, k, deadline)?;
                    result
                        .stats
                        .record_degradation_once(SKETCH_UNAVAILABLE_NOTE);
                    result.stats.retrieval = Some(RetrievalInfo {
                        mode: RetrievalMode::Exact,
                        recall: 1.0,
                    });
                    Ok(result)
                }
            },
        }
    }

    /// Incremental ranking query: a lazy stream of `(id, exact distance)`
    /// in nondecreasing distance order, refining only as much as the
    /// consumed prefix requires. The streaming counterpart of
    /// [`QueryEngine::knn`] when `k` is not known up front.
    ///
    /// If the configured first stage cannot start a ranking, the stream
    /// is opened over the sequential-scan fallback instead. A failure
    /// *mid*-stream is yielded as one `Err` item, after which the stream
    /// ends — callers wanting automatic recovery there should fall back
    /// to [`QueryEngine::knn`] with the count consumed so far.
    pub fn nearest_stream<'q>(
        &'q self,
        q: &'q Histogram,
    ) -> Result<crate::multistep::NearestStream<'q>, PipelineError> {
        match crate::multistep::nearest_stream(
            self.stage.as_source(),
            self.db,
            q,
            self.intermediates(),
            &self.exact,
        ) {
            Err(PipelineError::Source { .. }) => crate::multistep::nearest_stream(
                &self.fallback,
                self.db,
                q,
                self.intermediates(),
                &self.exact,
            ),
            other => other,
        }
    }

    /// ε-range query with the configured pipeline. Degrades to a
    /// sequential scan on first-stage failure, like [`QueryEngine::knn`].
    pub fn range(&self, q: &Histogram, epsilon: f64) -> Result<QueryResult, PipelineError> {
        self.range_within(q, epsilon, Deadline::none())
    }

    /// [`QueryEngine::range`] under a wall-clock budget; partial-result
    /// semantics as for [`QueryEngine::knn_within`].
    pub fn range_within(
        &self,
        q: &Histogram,
        epsilon: f64,
        deadline: Deadline,
    ) -> Result<QueryResult, PipelineError> {
        let mut span = obs::span!("engine_range", epsilon = epsilon);
        let run = |source: &dyn CandidateSource| {
            range_query_within(
                source,
                self.db,
                q,
                epsilon,
                &self.intermediates(),
                &self.exact,
                deadline,
            )
        };
        match run(self.stage.as_source()) {
            Err(PipelineError::Source { stage, reason }) => {
                span.record("degraded", 1.0);
                let mut result = run(&self.fallback)?;
                Self::record_degradation(&mut result, &stage, &reason);
                Ok(result)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::multistep::linear_scan_knn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(424242);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    #[test]
    fn every_configuration_matches_brute_force() {
        let (grid, db) = setup(60);
        let q = random_histogram(&mut StdRng::seed_from_u64(1), grid.num_bins());
        let exact = ExactEmd::new(grid.cost_matrix());
        let brute = linear_scan_knn(&db, &q, 5, &exact).unwrap();
        let bd: Vec<f64> = brute.items.iter().map(|(_, d)| *d).collect();

        let stages = [
            FirstStage::AvgIndex,
            FirstStage::ManhattanIndex { dims: 3 },
            FirstStage::ManhattanScan,
            FirstStage::AvgScan,
            FirstStage::ImScan,
        ];
        for stage in stages {
            for use_im in [false, true] {
                for alg in [KnnAlgorithm::Optimal, KnnAlgorithm::Gemini] {
                    let engine = QueryEngine::builder(&db, &grid)
                        .first_stage(stage)
                        .lb_im(use_im)
                        .algorithm(alg)
                        .build();
                    let r = engine.knn(&q, 5).unwrap();
                    let rd: Vec<f64> = r.items.iter().map(|(_, d)| *d).collect();
                    assert_eq!(rd.len(), bd.len(), "{stage:?} im={use_im} {alg:?}");
                    for (a, b) in rd.iter().zip(&bd) {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "{stage:?} im={use_im} {alg:?}: {rd:?} vs {bd:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_queries_match_brute_force() {
        let (grid, db) = setup(50);
        let q = random_histogram(&mut StdRng::seed_from_u64(2), grid.num_bins());
        let exact = ExactEmd::new(grid.cost_matrix());
        let eps = 0.1;
        let mut expect: Vec<usize> = db
            .iter()
            .filter(|(_, h)| exact.distance(&q, &h.to_histogram()) <= eps)
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        for stage in [FirstStage::AvgIndex, FirstStage::ManhattanIndex { dims: 3 }] {
            let engine = QueryEngine::builder(&db, &grid).first_stage(stage).build();
            let r = engine.range(&q, eps).unwrap();
            let mut got: Vec<usize> = r.items.iter().map(|(id, _)| *id).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "{stage:?}");
        }
    }

    #[test]
    fn two_phase_combo_beats_plain_index_in_exact_evaluations() {
        let (grid, db) = setup(150);
        let q = random_histogram(&mut StdRng::seed_from_u64(3), grid.num_bins());
        let with_im = QueryEngine::builder(&db, &grid).lb_im(true).build();
        let without_im = QueryEngine::builder(&db, &grid).lb_im(false).build();
        let a = with_im.knn(&q, 10).unwrap();
        let b = without_im.knn(&q, 10).unwrap();
        assert!(a.stats.exact_evaluations <= b.stats.exact_evaluations);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::multistep::{linear_scan_knn, FailingSource, ScanSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(31337);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    /// Acceptance test from the issue: when the index stage errors, the
    /// engine's k-NN answer comes back correct via the scan fallback.
    #[test]
    fn knn_is_correct_via_scan_fallback_when_index_stage_errors() {
        let (grid, db) = setup(80);
        let cost = grid.cost_matrix();
        let q = random_histogram(&mut StdRng::seed_from_u64(7), grid.num_bins());
        let exact = ExactEmd::new(cost.clone());
        let brute = linear_scan_knn(&db, &q, 5, &exact).unwrap();

        // Fail at different depths: immediately, and mid-traversal.
        for fail_after in [0usize, 1, 7] {
            let broken = FailingSource::new(
                ScanSource::new(&db, LbManhattan::new(&cost)),
                fail_after,
                "simulated corrupt index page",
            );
            let engine = QueryEngine::builder(&db, &grid)
                .custom_source(Box::new(broken))
                .build();
            let r = engine.knn(&q, 5).expect("fallback must answer the query");
            assert_eq!(r.items.len(), brute.items.len(), "fail_after={fail_after}");
            for ((_, a), (_, b)) in r.items.iter().zip(&brute.items) {
                assert!((a - b).abs() < 1e-9, "fail_after={fail_after}");
            }
            assert_eq!(
                r.stats.degradations.len(),
                1,
                "fallback must be recorded in stats"
            );
            assert!(r.stats.degradations[0].contains("simulated corrupt index page"));
        }
    }

    #[test]
    fn range_degrades_to_scan_and_stays_exact() {
        let (grid, db) = setup(60);
        let cost = grid.cost_matrix();
        let q = random_histogram(&mut StdRng::seed_from_u64(8), grid.num_bins());
        let exact = ExactEmd::new(cost.clone());
        let eps = 0.1;
        let mut expect: Vec<usize> = db
            .iter()
            .filter(|(_, h)| exact.distance(&q, &h.to_histogram()) <= eps)
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();

        let broken = FailingSource::new(
            ScanSource::new(&db, LbManhattan::new(&cost)),
            0,
            "index unavailable",
        );
        let engine = QueryEngine::builder(&db, &grid)
            .custom_source(Box::new(broken))
            .build();
        let r = engine.range(&q, eps).unwrap();
        let mut got: Vec<usize> = r.items.iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(r.stats.degradations.len(), 1);
    }

    #[test]
    fn stream_opens_over_fallback_when_index_is_down() {
        let (grid, db) = setup(40);
        let cost = grid.cost_matrix();
        let q = random_histogram(&mut StdRng::seed_from_u64(9), grid.num_bins());
        let exact = ExactEmd::new(cost.clone());
        let brute = linear_scan_knn(&db, &q, 4, &exact).unwrap();

        let broken = FailingSource::new(
            ScanSource::new(&db, LbManhattan::new(&cost)),
            0,
            "index unavailable",
        );
        let engine = QueryEngine::builder(&db, &grid)
            .custom_source(Box::new(broken))
            .build();
        let prefix: Vec<(usize, f64)> = engine
            .nearest_stream(&q)
            .expect("stream must open over the fallback")
            .take(4)
            .map(|r| r.unwrap())
            .collect();
        for ((_, a), (_, b)) in prefix.iter().zip(&brute.items) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn healthy_engine_records_no_degradation() {
        let (grid, db) = setup(30);
        let q = random_histogram(&mut StdRng::seed_from_u64(10), grid.num_bins());
        let engine = QueryEngine::builder(&db, &grid).build();
        let r = engine.knn(&q, 3).unwrap();
        assert!(r.stats.degradations.is_empty());
    }

    /// Issue satellite: a fault-injected first stage must yield exactly
    /// one `degradations` entry and results identical to a healthy run.
    #[test]
    fn faulted_first_stage_matches_healthy_run_with_one_degradation() {
        let (grid, db) = setup(70);
        let cost = grid.cost_matrix();
        let q = random_histogram(&mut StdRng::seed_from_u64(11), grid.num_bins());

        let healthy = QueryEngine::builder(&db, &grid).build();
        let good = healthy.knn(&q, 6).unwrap();
        assert!(good.stats.degradations.is_empty());

        let broken = FailingSource::new(
            ScanSource::new(&db, LbManhattan::new(&cost)),
            2,
            "fault-injected index stage",
        );
        let faulted = QueryEngine::builder(&db, &grid)
            .custom_source(Box::new(broken))
            .build();
        let r = faulted.knn(&q, 6).unwrap();

        assert_eq!(
            r.stats.degradations.len(),
            1,
            "fault must surface exactly once, got {:?}",
            r.stats.degradations
        );
        assert_eq!(r.items.len(), good.items.len());
        for ((id_f, d_f), (id_h, d_h)) in r.items.iter().zip(&good.items) {
            assert_eq!(id_f, id_h, "result ids must match the healthy run");
            assert!((d_f - d_h).abs() < 1e-9);
        }
        // The degraded run still reports a per-stage time breakdown.
        assert!(
            r.stats.stage_time(crate::stats::stage::EXACT).is_some(),
            "fallback path must keep stage timings"
        );
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use crate::lower_bounds::test_support::random_histogram;
    use crate::sketch_tier::{SKETCH_ONLY_NOTE, SKETCH_UNAVAILABLE_NOTE};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(count: usize) -> (BinGrid, HistogramDb) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(90210);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..count {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        (grid, db)
    }

    #[test]
    fn exact_mode_matches_the_modeless_api_and_reports_recall_one() {
        let (grid, db) = setup(60);
        let q = random_histogram(&mut StdRng::seed_from_u64(1), grid.num_bins());
        let engine = QueryEngine::builder(&db, &grid).build();
        let plain = engine.knn(&q, 5).unwrap();
        assert!(plain.stats.retrieval.is_none(), "mode-less API stays None");
        let exact = engine.knn_mode(&q, 5, RetrievalMode::Exact).unwrap();
        assert_eq!(exact.items, plain.items);
        let info = exact.stats.retrieval.unwrap();
        assert_eq!(info.mode, RetrievalMode::Exact);
        assert_eq!(info.recall, 1.0);
    }

    #[test]
    fn approximate_mode_honors_the_distance_ratio_guarantee() {
        let (grid, db) = setup(90);
        let q = random_histogram(&mut StdRng::seed_from_u64(2), grid.num_bins());
        let engine = QueryEngine::builder(&db, &grid).build();
        let strict = engine.knn(&q, 6).unwrap();
        let true_kth = strict.items.last().unwrap().1;
        for epsilon in [0.0, 0.5, 2.0] {
            let r = engine
                .knn_mode(&q, 6, RetrievalMode::Approximate { epsilon })
                .unwrap();
            assert_eq!(r.items.len(), strict.items.len());
            for (_, d) in &r.items {
                assert!(
                    *d <= (1.0 + epsilon) * true_kth + 1e-9,
                    "eps={epsilon}: {d} vs kth {true_kth}"
                );
            }
            assert!(r.stats.exact_evaluations <= strict.stats.exact_evaluations);
            let info = r.stats.retrieval.unwrap();
            assert_eq!(info.mode, RetrievalMode::Approximate { epsilon });
            assert!((info.recall - 1.0 / (1.0 + epsilon)).abs() < 1e-12);
        }
    }

    #[test]
    fn sketch_only_mode_answers_from_the_tier_without_refinement() {
        let (grid, db) = setup(70);
        let tier = SketchTier::build(&db, &grid, 42).unwrap();
        let engine = QueryEngine::builder(&db, &grid).sketch(tier).build();
        assert!(engine.sketch_tier().is_some());
        let q = db.get(11).to_histogram();
        let r = engine.knn_mode(&q, 4, RetrievalMode::SketchOnly).unwrap();
        assert_eq!(r.items[0].0, 11, "identical row must rank first");
        assert_eq!(r.stats.exact_evaluations, 0, "no refinement in sketch mode");
        assert!(r.stats.degradations.iter().any(|d| d == SKETCH_ONLY_NOTE));
        assert_eq!(r.stats.retrieval.unwrap().mode, RetrievalMode::SketchOnly);
    }

    #[test]
    fn sketch_only_without_a_tier_degrades_to_exact() {
        let (grid, db) = setup(40);
        let q = random_histogram(&mut StdRng::seed_from_u64(3), grid.num_bins());
        let engine = QueryEngine::builder(&db, &grid).build();
        let exact = engine.knn(&q, 3).unwrap();
        let r = engine.knn_mode(&q, 3, RetrievalMode::SketchOnly).unwrap();
        assert_eq!(r.items, exact.items, "answer stays exact");
        assert!(r
            .stats
            .degradations
            .iter()
            .any(|d| d == SKETCH_UNAVAILABLE_NOTE));
        let info = r.stats.retrieval.unwrap();
        assert_eq!(info.mode, RetrievalMode::Exact);
        assert_eq!(info.recall, 1.0);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::lower_bounds::test_support::random_histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn engine_stream_prefix_equals_knn() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(777);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..70 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let engine = QueryEngine::builder(&db, &grid).build();
        let q = random_histogram(&mut rng, grid.num_bins());
        let knn = engine.knn(&q, 6).unwrap();
        let prefix: Vec<(usize, f64)> = engine
            .nearest_stream(&q)
            .unwrap()
            .take(6)
            .map(|r| r.unwrap())
            .collect();
        for ((_, a), (_, b)) in prefix.iter().zip(&knn.items) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
