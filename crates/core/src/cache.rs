//! Query-signature-keyed cache of filter distance columns.
//!
//! The filter stage of the multistep pipeline evaluates one prepared
//! kernel over every database row and produces a `Vec<f64>` of
//! lower-bound distances. For a paged database that scan is the part
//! that touches disk, so repeating a query (or re-running the same
//! filter during a knn/range pair) should not re-read cold blocks. The
//! [`FilterCache`] memoizes whole distance columns keyed by *(filter
//! name, filter parameter signature, query signature, row count)*; the
//! signatures hash exact `f64` bit patterns, so a hit is guaranteed to
//! reproduce the uncached scan bit for bit.
//!
//! The cache is an **executor optimization only**: reported work
//! statistics (`filter_evaluations`) stay nominal, describing the
//! logical scan the pipeline performed. Ingest must call
//! [`FilterCache::invalidate`] — a stale column would silently drop new
//! rows from every query.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Bound on resident columns; FIFO eviction beyond this.
const MAX_ENTRIES: usize = 32;

/// Identity of one memoized filter scan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The filter's [`crate::DistanceMeasure::name`].
    pub filter: &'static str,
    /// Signature of the filter's parameters
    /// ([`crate::DistanceMeasure::cache_signature`]).
    pub params: u64,
    /// Signature of the query bins ([`query_signature`]).
    pub query: u64,
    /// Rows the column covers (belt-and-braces alongside invalidation).
    pub rows: usize,
}

/// Counters of a [`FilterCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterCacheStats {
    /// Lookups answered from a memoized column.
    pub hits: u64,
    /// Lookups that fell through to a real scan.
    pub misses: u64,
    /// Columns currently resident.
    pub entries: usize,
}

struct CacheInner {
    /// Insertion-ordered (FIFO eviction) list of memoized columns. The
    /// population is tiny (≤ [`MAX_ENTRIES`]), so a scan beats a map.
    entries: Mutex<VecDeque<(CacheKey, Arc<Vec<f64>>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A bounded, shared cache of filter distance columns.
///
/// Cloning shares the underlying store (`Arc`), so every handle onto
/// the same database sees the same columns and the same invalidation.
#[derive(Clone)]
pub struct FilterCache {
    inner: Arc<CacheInner>,
}

impl std::fmt::Debug for FilterCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FilterCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl Default for FilterCache {
    fn default() -> Self {
        FilterCache {
            inner: Arc::new(CacheInner {
                entries: Mutex::new(VecDeque::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }
}

impl FilterCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a memoized column, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<f64>>> {
        let entries = self
            .inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let found = entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| Arc::clone(v));
        if found.is_some() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Memoizes a column, evicting the oldest entry beyond the bound.
    /// Re-inserting an existing key replaces the column in place.
    pub fn insert(&self, key: CacheKey, column: Arc<Vec<f64>>) {
        let mut entries = self
            .inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = column;
            return;
        }
        entries.push_back((key, column));
        while entries.len() > MAX_ENTRIES {
            entries.pop_front();
        }
    }

    /// Drops every memoized column. Must run on any ingest into the
    /// database the cache fronts.
    pub fn invalidate(&self) {
        self.inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FilterCacheStats {
        let entries = self
            .inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        FilterCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// FNV-1a over the exact bit patterns of a float slice — the query- and
/// parameter-signature primitive. Bit-exact by construction: two slices
/// collide in intent only if they are the same floats (modulo the
/// negligible 64-bit hash collision probability, which the `rows` field
/// and filter name further fence).
pub fn signature_of(values: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Folds an extra word into a signature — used to combine flag bits or
/// dimensions into a parameter signature.
pub fn signature_with(hash: u64, word: u64) -> u64 {
    let mut hash = hash;
    for byte in word.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> CacheKey {
        CacheKey {
            filter: "LB_Test",
            params: 7,
            query: q,
            rows: 10,
        }
    }

    #[test]
    fn hit_returns_the_same_column() {
        let cache = FilterCache::new();
        let col = Arc::new(vec![1.0, 2.0]);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::clone(&col));
        let got = cache.get(&key(1)).expect("hit");
        assert!(Arc::ptr_eq(&got, &col));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn invalidate_empties_the_cache() {
        let cache = FilterCache::new();
        cache.insert(key(1), Arc::new(vec![1.0]));
        cache.invalidate();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clones_share_state() {
        let cache = FilterCache::new();
        let other = cache.clone();
        cache.insert(key(2), Arc::new(vec![3.0]));
        assert!(other.get(&key(2)).is_some());
        other.invalidate();
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = FilterCache::new();
        for q in 0..(MAX_ENTRIES as u64 + 4) {
            cache.insert(key(q), Arc::new(vec![q as f64]));
        }
        assert_eq!(cache.stats().entries, MAX_ENTRIES);
        assert!(cache.get(&key(0)).is_none(), "oldest entries evicted");
        assert!(cache.get(&key(MAX_ENTRIES as u64 + 3)).is_some());
    }

    #[test]
    fn signatures_are_bit_exact() {
        assert_ne!(signature_of(&[0.0]), signature_of(&[-0.0]));
        assert_eq!(signature_of(&[1.5, 2.5]), signature_of(&[1.5, 2.5]));
        assert_ne!(signature_of(&[1.5, 2.5]), signature_of(&[2.5, 1.5]));
        assert_ne!(signature_with(1, 2), signature_with(1, 3));
    }
}
