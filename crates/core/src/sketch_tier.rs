//! The approximate retrieval tier: sketch indexes over the database and
//! the [`RetrievalMode`] knob that trades recall for latency.
//!
//! The paper's pipeline is *exact* — every filter is admissible, recall
//! is always 1.0 and latency is whatever refinement costs. This module
//! adds the missing operating points on the recall/latency curve:
//!
//! * [`RetrievalMode::Exact`] — the existing optimal multistep pipeline,
//!   recall 1.0.
//! * [`RetrievalMode::Approximate`] — ε-relaxed multistep refinement:
//!   the optimal k-NN loop prunes against `d_k / (1 + ε)` instead of
//!   `d_k`, cutting exact-EMD evaluations while guaranteeing no
//!   reported neighbor is worse than `(1 + ε)` times the true k-th
//!   nearest distance.
//! * [`RetrievalMode::SketchOnly`] — answer straight from the
//!   tree-embedding sketch arena, skipping refinement entirely; the
//!   result carries a [`SKETCH_ONLY_NOTE`] degradation note because the
//!   reported distances are approximations.
//!
//! [`SketchTier`] bundles the two sketch families of
//! `earthmover-sketch` (the distortion-certified tree embedding that
//! answers sketch-only queries, and the normal-distribution projection
//! kept as an index-side filter surface) built over one database, with
//! sidecar persistence next to the `.emdc` column store.

use std::io;
use std::path::Path;
use std::time::Instant;

use crate::db::HistogramDb;
use crate::deadline::{Deadline, DEADLINE_NOTE};
use crate::error::PipelineError;
use crate::ground::BinGrid;
use crate::histogram::Histogram;
use crate::stats::QueryStats;
use earthmover_obs as obs;
use earthmover_sketch::{
    load_sidecar, save_sidecar, NormalProjection, Sketch, SketchIndex, SketchSidecar, TreeEmbedding,
};
use serde::{Deserialize, Serialize};

/// Degradation note recorded on every sketch-only answer: distances are
/// sketch approximations, not exact EMDs.
pub const SKETCH_ONLY_NOTE: &str =
    "SKETCH_ONLY: refinement skipped; distances are sketch approximations";

/// Degradation note recorded when a sketch-only query arrives at an
/// engine with no sketch tier attached — the engine serves the exact
/// answer instead of failing.
pub const SKETCH_UNAVAILABLE_NOTE: &str =
    "SKETCH_UNAVAILABLE: no sketch tier loaded; query served exact";

/// Which retrieval tier a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// The exact multistep pipeline — recall 1.0, full refinement cost.
    Exact,
    /// ε-relaxed multistep refinement: every reported neighbor is within
    /// `(1 + epsilon)` of the true k-th nearest distance, with fewer
    /// exact-EMD refinements the larger `epsilon` is.
    Approximate {
        /// Relative slack; `0.0` reproduces the exact tier bit-for-bit.
        epsilon: f64,
    },
    /// Answer from the tree-embedding sketch arena alone — no
    /// refinement, order-of-magnitude latency win, bounded (not perfect)
    /// recall.
    SketchOnly,
}

impl RetrievalMode {
    /// Wire code of the mode (`0`/`1`/`2`).
    pub fn code(&self) -> u8 {
        match self {
            RetrievalMode::Exact => 0,
            RetrievalMode::Approximate { .. } => 1,
            RetrievalMode::SketchOnly => 2,
        }
    }

    /// The relaxation parameter (zero for non-approximate modes).
    pub fn epsilon(&self) -> f64 {
        match self {
            RetrievalMode::Approximate { epsilon } => *epsilon,
            _ => 0.0,
        }
    }

    /// Decodes a wire `(code, epsilon)` pair; `None` for unknown codes
    /// or a non-finite/negative epsilon.
    pub fn from_code(code: u8, epsilon: f64) -> Option<RetrievalMode> {
        match code {
            0 => Some(RetrievalMode::Exact),
            1 if epsilon.is_finite() && epsilon >= 0.0 => {
                Some(RetrievalMode::Approximate { epsilon })
            }
            2 => Some(RetrievalMode::SketchOnly),
            _ => None,
        }
    }

    /// Parses the CLI spelling: `exact`, `sketch`, or `approx:<eps>`
    /// (also accepted: `approximate:<eps>`).
    pub fn parse(s: &str) -> Option<RetrievalMode> {
        match s {
            "exact" => Some(RetrievalMode::Exact),
            "sketch" => Some(RetrievalMode::SketchOnly),
            _ => {
                let eps = s
                    .strip_prefix("approx:")
                    .or_else(|| s.strip_prefix("approximate:"))?;
                let epsilon: f64 = eps.parse().ok()?;
                if epsilon.is_finite() && epsilon >= 0.0 {
                    Some(RetrievalMode::Approximate { epsilon })
                } else {
                    None
                }
            }
        }
    }
}

impl std::fmt::Display for RetrievalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrievalMode::Exact => write!(f, "exact"),
            RetrievalMode::Approximate { epsilon } => write!(f, "approx:{epsilon}"),
            RetrievalMode::SketchOnly => write!(f, "sketch"),
        }
    }
}

/// Which tier answered a query and the recall it guarantees — attached
/// to [`QueryStats::retrieval`] and carried over the wire so clients
/// see what they got.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalInfo {
    /// The mode the query actually ran under.
    pub mode: RetrievalMode,
    /// Guaranteed (not measured) recall of the tier: `1.0` for exact,
    /// the `1 / (1 + epsilon)` distance-ratio guarantee for the relaxed
    /// tier, and the `1 / distortion` sketch guarantee for sketch-only.
    /// Measured recall on a concrete corpus is typically far higher —
    /// see the `recall_curve` bench.
    pub recall: f64,
}

/// Both sketch families built over one database, ready to answer
/// sketch-only queries and to persist as a sidecar next to the column
/// store.
#[derive(Debug, Clone)]
pub struct SketchTier {
    tree: SketchIndex<TreeEmbedding>,
    normal: SketchIndex<NormalProjection>,
}

fn sketch_err(e: earthmover_sketch::SketchError) -> PipelineError {
    PipelineError::Source {
        stage: "sketch".into(),
        reason: e.to_string(),
    }
}

impl SketchTier {
    /// Builds both sketch indexes by streaming every database block
    /// through the projections — works for resident and paged databases
    /// alike. `seed` fixes the tree embedding's grid shift.
    pub fn build(db: &HistogramDb, grid: &BinGrid, seed: u64) -> Result<Self, PipelineError> {
        if grid.num_bins() != db.dims() {
            return Err(PipelineError::Source {
                stage: "sketch".into(),
                reason: format!(
                    "grid has {} bins but database rows have {}",
                    grid.num_bins(),
                    db.dims()
                ),
            });
        }
        let mut span = obs::span!("sketch_build", rows = db.len());
        let tree_sketch = TreeEmbedding::new(grid.centroids(), seed).map_err(sketch_err)?;
        span.record("distortion", tree_sketch.distortion());
        let normal_sketch = NormalProjection::new(grid.centroids()).map_err(sketch_err)?;
        let mut tree = SketchIndex::new(tree_sketch);
        let mut normal = SketchIndex::new(normal_sketch);
        for b in 0..db.num_blocks() {
            let block = db.block(b)?;
            for row in block.chunks_exact(db.dims()) {
                tree.push(row).map_err(sketch_err)?;
                normal.push(row).map_err(sketch_err)?;
            }
        }
        Ok(SketchTier { tree, normal })
    }

    /// Number of sketched rows (equals the database length the tier was
    /// built over).
    pub fn rows(&self) -> usize {
        self.tree.rows()
    }

    /// Seed the tree embedding's grid shift was drawn from.
    pub fn seed(&self) -> u64 {
        self.tree.sketch().seed()
    }

    /// Certified distortion of the tree embedding:
    /// `EMD <= d_sketch <= distortion * EMD`.
    pub fn distortion(&self) -> f64 {
        self.tree.sketch().distortion()
    }

    /// The guaranteed-recall figure reported for sketch-only answers:
    /// the inverse of the certified distortion. A worst-case bound — the
    /// measured recall of the `recall_curve` bench is typically much
    /// higher.
    pub fn recall_estimate(&self) -> f64 {
        1.0 / self.distortion()
    }

    /// The tree-embedding index (the family that answers sketch-only
    /// queries).
    pub fn tree(&self) -> &SketchIndex<TreeEmbedding> {
        &self.tree
    }

    /// The normal-distribution index (kept as an index-side filter
    /// surface).
    pub fn normal(&self) -> &SketchIndex<NormalProjection> {
        &self.normal
    }

    /// k nearest rows under the tree-embedding sketch distance, sorted
    /// ascending by `(distance, id)` — one tiled pass over the sketch
    /// arena, no exact-EMD evaluation.
    pub fn knn(&self, query: &Histogram, k: usize) -> Result<Vec<(usize, f64)>, PipelineError> {
        let _span = obs::span!("sketch_scan", k = k, rows = self.rows());
        self.tree.knn(query.bins(), k).map_err(sketch_err)
    }

    /// Like [`SketchTier::knn`], but also assembles the [`QueryStats`]
    /// record for a sketch-only answer (including the
    /// [`SKETCH_ONLY_NOTE`] and the [`RetrievalInfo`]).
    pub fn knn_with_stats(
        &self,
        query: &Histogram,
        k: usize,
        deadline: Deadline,
    ) -> Result<(Vec<(usize, f64)>, QueryStats), PipelineError> {
        let start = Instant::now();
        let items = self.knn(query, k)?;
        let mut stats = QueryStats {
            db_size: self.rows(),
            results: items.len() as u64,
            retrieval: Some(RetrievalInfo {
                mode: RetrievalMode::SketchOnly,
                recall: self.recall_estimate(),
            }),
            ..Default::default()
        };
        stats.add_filter_evaluations(self.tree.sketch().name(), self.rows() as u64);
        stats.record_degradation_once(SKETCH_ONLY_NOTE);
        if deadline.expired() {
            stats.deadline_expired = true;
            stats.record_degradation_once(DEADLINE_NOTE);
        }
        stats.set_elapsed(start.elapsed());
        Ok((items, stats))
    }

    /// Serializes the tier into the sidecar record persisted alongside
    /// the column store.
    pub fn to_sidecar(&self) -> SketchSidecar {
        SketchSidecar {
            seed: self.seed(),
            feature_dims: self.normal.sketch().feature_dims() as u32,
            bins: self.tree.sketch().bins() as u32,
            rows: self.rows() as u64,
            tree_dim: self.tree.dim() as u32,
            tree_arena: self.tree.arena().to_vec(),
            normal_dim: self.normal.dim() as u32,
            normal_arena: self.normal.arena().to_vec(),
        }
    }

    /// Writes the tier to a sidecar file (conventionally
    /// `<db>.emds` next to the `.emdb`/`.emdc` store).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_sidecar(path, &self.to_sidecar())
    }

    /// Loads a sidecar and rebuilds the sketch definitions
    /// deterministically from `grid` and the stored seed — only the row
    /// arenas (the expensive part) come from disk. Geometry mismatches
    /// against the grid are reported as [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path, grid: &BinGrid) -> io::Result<Self> {
        let sidecar = load_sidecar(path)?;
        let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        if sidecar.feature_dims as usize != grid.feature_dims()
            || sidecar.bins as usize != grid.num_bins()
        {
            return Err(invalid(format!(
                "sketch sidecar was built over a {}-dim {}-bin grid; this grid is {}-dim {}-bin",
                sidecar.feature_dims,
                sidecar.bins,
                grid.feature_dims(),
                grid.num_bins()
            )));
        }
        let tree_sketch = TreeEmbedding::new(grid.centroids(), sidecar.seed)
            .map_err(|e| invalid(e.to_string()))?;
        if tree_sketch.dim() != sidecar.tree_dim as usize {
            return Err(invalid(format!(
                "rebuilt tree embedding has dim {} but sidecar stored {}",
                tree_sketch.dim(),
                sidecar.tree_dim
            )));
        }
        let normal_sketch =
            NormalProjection::new(grid.centroids()).map_err(|e| invalid(e.to_string()))?;
        if normal_sketch.dim() != sidecar.normal_dim as usize {
            return Err(invalid(format!(
                "rebuilt normal sketch has dim {} but sidecar stored {}",
                normal_sketch.dim(),
                sidecar.normal_dim
            )));
        }
        let rows = usize::try_from(sidecar.rows)
            .map_err(|_| invalid("sidecar row count overflows usize".into()))?;
        let tree = SketchIndex::from_parts(tree_sketch, sidecar.tree_arena, rows)
            .map_err(|e| invalid(e.to_string()))?;
        let normal = SketchIndex::from_parts(normal_sketch, sidecar.normal_arena, rows)
            .map_err(|e| invalid(e.to_string()))?;
        Ok(SketchTier { tree, normal })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn test_db(grid: &BinGrid, n: usize) -> HistogramDb {
        let mut db = HistogramDb::new(grid.num_bins());
        let mut state = 0x5eed_u64;
        for _ in 0..n {
            let bins: Vec<f64> = (0..grid.num_bins())
                .map(|_| {
                    let x = earthmover_sketch::splitmix64(&mut state);
                    (x % 1000) as f64 / 1000.0 + 0.001
                })
                .collect();
            db.push(Histogram::new(bins).unwrap());
        }
        db
    }

    #[test]
    fn mode_codes_round_trip() {
        for mode in [
            RetrievalMode::Exact,
            RetrievalMode::Approximate { epsilon: 0.5 },
            RetrievalMode::SketchOnly,
        ] {
            assert_eq!(
                RetrievalMode::from_code(mode.code(), mode.epsilon()),
                Some(mode)
            );
        }
        assert_eq!(RetrievalMode::from_code(9, 0.0), None);
        assert_eq!(RetrievalMode::from_code(1, f64::NAN), None);
        assert_eq!(RetrievalMode::from_code(1, -0.5), None);
    }

    #[test]
    fn mode_parse_matches_display() {
        for mode in [
            RetrievalMode::Exact,
            RetrievalMode::Approximate { epsilon: 0.25 },
            RetrievalMode::SketchOnly,
        ] {
            assert_eq!(RetrievalMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(
            RetrievalMode::parse("approximate:1.5").unwrap().epsilon(),
            1.5
        );
        assert_eq!(RetrievalMode::parse("bogus"), None);
        assert_eq!(RetrievalMode::parse("approx:nope"), None);
        assert_eq!(RetrievalMode::parse("approx:-1"), None);
    }

    #[test]
    fn build_requires_matching_geometry() {
        let grid = BinGrid::new(vec![2, 2]);
        let db = HistogramDb::new(8);
        assert!(matches!(
            SketchTier::build(&db, &grid, 1),
            Err(PipelineError::Source { .. })
        ));
    }

    #[test]
    fn sketch_knn_finds_identical_row_first() {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let db = test_db(&grid, 50);
        let tier = SketchTier::build(&db, &grid, 7).unwrap();
        assert_eq!(tier.rows(), 50);
        assert!(tier.distortion() >= 1.0);
        let query = db.get(13).to_histogram();
        let items = tier.knn(&query, 5).unwrap();
        assert_eq!(items[0].0, 13);
        assert_eq!(items[0].1, 0.0);
    }

    #[test]
    fn knn_with_stats_records_the_sketch_only_note() {
        let grid = BinGrid::new(vec![2, 2]);
        let db = test_db(&grid, 20);
        let tier = SketchTier::build(&db, &grid, 3).unwrap();
        let query = db.get(0).to_histogram();
        let (items, stats) = tier.knn_with_stats(&query, 3, Deadline::none()).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(stats.db_size, 20);
        assert_eq!(stats.results, 3);
        assert_eq!(stats.exact_evaluations, 0);
        assert!(stats.degradations.iter().any(|d| d == SKETCH_ONLY_NOTE));
        let info = stats.retrieval.unwrap();
        assert_eq!(info.mode, RetrievalMode::SketchOnly);
        assert!(info.recall > 0.0 && info.recall <= 1.0);
    }

    #[test]
    fn sidecar_round_trips_through_disk() {
        let grid = BinGrid::new(vec![4, 2, 2]);
        let db = test_db(&grid, 30);
        let tier = SketchTier::build(&db, &grid, 99).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("sketch_tier_rt_{}.emds", std::process::id()));
        tier.save(&path).unwrap();
        let loaded = SketchTier::load(&path, &grid).unwrap();
        assert_eq!(loaded.rows(), tier.rows());
        assert_eq!(loaded.seed(), tier.seed());
        assert_eq!(loaded.distortion(), tier.distortion());
        let query = db.get(7).to_histogram();
        assert_eq!(loaded.knn(&query, 4).unwrap(), tier.knn(&query, 4).unwrap());
        // Loading against the wrong grid is a typed failure.
        let err = SketchTier::load(&path, &BinGrid::new(vec![2, 2])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
