//! Query-compiled distance kernels: the batch evaluation layer.
//!
//! A [`DistanceKernel`] is a [`super::DistanceMeasure`] *prepared* for one
//! fixed query: everything that depends only on the query — weight
//! vectors for the L_p bounds (§4.3–4.5), the query centroid for LB_Avg
//! (§4.1), the query-side greedy state for LB_IM (§4.6) — is hoisted out
//! of the candidate loop at [`super::DistanceMeasure::prepare`] time.
//! The kernel then evaluates candidates either one row at a time
//! ([`DistanceKernel::eval`]) or over a whole columnar block straight out
//! of the [`crate::db::HistogramDb`] arena
//! ([`DistanceKernel::eval_block`]).
//!
//! # Contract
//!
//! For every measure `m`, query `q` and database row `h`:
//!
//! ```text
//! m.prepare(&q).eval(h.bins()) == m.distance(&q, &h)      (bit-identical)
//! eval_block(block, d, out)[i] == eval(block[i*d..(i+1)*d])
//! ```
//!
//! The equality is *exact*, not approximate: the prepared paths perform
//! the same floating-point operation sequence per candidate term as the
//! scalar paths, so filter selectivity and k-NN result sets cannot shift
//! between the scalar and batched executors. A property test in
//! `tests/bound_matrix.rs` enforces this to ≤ 1 ulp for every measure.
//!
//! Candidate rows come from the database arena and therefore carry mass
//! exactly 1; kernels may (and do) exploit that invariant.

use crate::error::PipelineError;
use crate::histogram::Histogram;

/// A distance measure compiled against one fixed query histogram.
///
/// Obtained from [`super::DistanceMeasure::prepare`]; borrows the measure
/// it was prepared from. Kernels are immutable after construction and
/// shared across scan worker threads, hence the `Send + Sync` bound.
pub trait DistanceKernel: Send + Sync {
    /// Distance between the prepared query and one candidate row of
    /// mass-normalized bins.
    ///
    /// # Panics
    ///
    /// Implementations may panic on arity mismatch, exactly like
    /// [`super::DistanceMeasure::distance`].
    fn eval(&self, cand: &[f64]) -> f64;

    /// Fallible variant of [`DistanceKernel::eval`] that also reports a
    /// degradation note, mirroring
    /// [`super::DistanceMeasure::try_distance_noted`]. The lower bounds
    /// cannot fail and use this default; the exact-EMD kernel overrides
    /// it to surface solver fallbacks.
    fn try_eval_noted(&self, cand: &[f64]) -> Result<(f64, Option<&'static str>), PipelineError> {
        Ok((self.eval(cand), None))
    }

    /// Evaluates a whole columnar block: `block` holds
    /// `out.len()` candidate rows back to back with the given `stride`,
    /// and row `i`'s distance is written to `out[i]`.
    ///
    /// The default walks the block row by row through
    /// [`DistanceKernel::eval`]; the L_p kernels override it with a
    /// multi-row pass that amortizes weight-vector traversal.
    fn eval_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert_eq!(block.len(), stride * out.len(), "block/out shape mismatch");
        for (row, slot) in block.chunks_exact(stride).zip(out.iter_mut()) {
            *slot = self.eval(row);
        }
    }
}

/// The fallback kernel: holds a clone of the query and calls the
/// measure's pair-at-a-time entry points for every candidate. Used by
/// every measure without a specialized kernel (notably
/// [`super::ExactEmd`]'s simplex, whose per-pair cost dwarfs any
/// batching win, and external [`super::DistanceMeasure`] impls that keep
/// the default [`super::DistanceMeasure::prepare`]).
pub(crate) struct PairKernel<'m, M: ?Sized> {
    /// The borrowed parent measure.
    pub(crate) measure: &'m M,
    /// Owned copy of the query.
    pub(crate) q: Histogram,
}

impl<M: super::DistanceMeasure + ?Sized> DistanceKernel for PairKernel<'_, M> {
    fn eval(&self, cand: &[f64]) -> f64 {
        self.measure
            .distance(&self.q, &Histogram::from_normalized_slice(cand))
    }

    fn try_eval_noted(&self, cand: &[f64]) -> Result<(f64, Option<&'static str>), PipelineError> {
        self.measure
            .try_distance_noted(&self.q, &Histogram::from_normalized_slice(cand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A measure whose value encodes its inputs, to check block plumbing.
    struct SumDiff;

    impl super::super::DistanceMeasure for SumDiff {
        fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
            x.bins()
                .iter()
                .zip(y.bins())
                .map(|(a, b)| (a - b).abs())
                .sum()
        }
        fn name(&self) -> &'static str {
            "SumDiff"
        }
    }

    #[test]
    fn default_block_matches_per_row_eval() {
        use super::super::DistanceMeasure;
        let q = Histogram::normalized(vec![1.0, 1.0]).unwrap();
        let kernel = SumDiff.prepare(&q);
        let block = [1.0, 0.0, 0.25, 0.75, 0.5, 0.5];
        let mut out = [0.0; 3];
        kernel.eval_block(&block, 2, &mut out);
        for (row, got) in block.chunks_exact(2).zip(out) {
            assert_eq!(got, kernel.eval(row));
        }
        assert_eq!(out[0], 1.0);
        assert_eq!(out[2], 0.0);
    }
}
