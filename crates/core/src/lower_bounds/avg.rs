//! Rubner's centroid-averaging lower bound (§4.1 of the paper).

use super::kernel::DistanceKernel;
use super::DistanceMeasure;
use crate::ground::euclidean;
use crate::histogram::Histogram;

/// The 3-D averaging lower bound `LB_Avg` of Rubner et al. (ICCV 1998):
///
/// ```text
/// EMD(x, y) ≥ ‖ Σ_i x_i·r_i / m  −  Σ_i y_i·r_i / m ‖
/// ```
///
/// where `r_i` is the centroid of bin `i` in the underlying feature space
/// (e.g. a 3-D color space) and the norm is the same one that defines the
/// ground distance. In words: moving earth can never beat teleporting the
/// *center of mass* directly.
///
/// The bound is valid when the ground distance is the norm-induced metric
/// on the bin centroids (here: Euclidean). Its output lives in the
/// feature-space dimensionality — three dimensions for color — which makes
/// it the natural index filter of §4.7 but denies it any flexibility to
/// grow tighter with histogram resolution (the paper's criticism in §4.1).
#[derive(Debug, Clone)]
pub struct LbAvg {
    centroids: Vec<Vec<f64>>,
}

impl LbAvg {
    /// Builds the bound from per-bin centroids in feature space.
    ///
    /// # Panics
    ///
    /// Panics if the centroids are empty or have inconsistent arity.
    pub fn new(centroids: Vec<Vec<f64>>) -> Self {
        assert!(!centroids.is_empty(), "need at least one centroid");
        let d = centroids[0].len();
        assert!(
            centroids.iter().all(|c| c.len() == d),
            "centroid arity must be uniform"
        );
        LbAvg { centroids }
    }

    /// Feature-space dimensionality (3 for color).
    pub fn feature_dims(&self) -> usize {
        self.centroids[0].len()
    }

    /// The mass-weighted centroid `Σ_i x_i·r_i / m` of a histogram — the
    /// exact quantity the paper precomputes as the 3-D index key.
    pub fn average(&self, x: &Histogram) -> Vec<f64> {
        self.average_bins(x.bins(), x.mass())
    }

    /// [`LbAvg::average`] over raw bins with an explicit total mass.
    /// Database arena rows carry mass exactly 1, so block kernels pass
    /// `1.0` without recomputing the sum.
    pub fn average_bins(&self, bins: &[f64], m: f64) -> Vec<f64> {
        let mut avg = vec![0.0; self.feature_dims()];
        self.average_into(bins, m, &mut avg);
        avg
    }

    /// [`LbAvg::average_bins`] writing into caller-provided scratch (no
    /// allocation); `out` must have [`LbAvg::feature_dims`] entries.
    pub fn average_into(&self, bins: &[f64], m: f64, out: &mut [f64]) {
        debug_assert_eq!(bins.len(), self.centroids.len(), "arity mismatch");
        debug_assert_eq!(out.len(), self.feature_dims(), "feature arity mismatch");
        let d = out.len();
        for a in out.iter_mut() {
            *a = 0.0;
        }
        if m <= 0.0 {
            return;
        }
        for (xi, r) in bins.iter().zip(&self.centroids) {
            // xlint:allow(float_discipline): exact-zero sparsity skip; any nonzero mass must contribute
            if *xi != 0.0 {
                for k in 0..d {
                    out[k] += xi * r[k];
                }
            }
        }
        for a in out.iter_mut() {
            *a /= m;
        }
    }
}

/// Query-compiled [`LbAvg`] kernel: the query's centroid is folded once
/// at [`DistanceMeasure::prepare`] time, so each candidate costs one
/// sparse centroid fold plus a `feature_dims`-length Euclidean distance.
struct AvgKernel<'m> {
    lb: &'m LbAvg,
    /// `Σ_i q_i·r_i / m` for the prepared query, computed once.
    q_avg: Vec<f64>,
}

impl DistanceKernel for AvgKernel<'_> {
    fn eval(&self, cand: &[f64]) -> f64 {
        euclidean(&self.q_avg, &self.lb.average_bins(cand, 1.0))
    }

    fn eval_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert_eq!(block.len(), stride * out.len(), "block/out shape mismatch");
        let mut avg = vec![0.0; self.lb.feature_dims()];
        for (row, slot) in block.chunks_exact(stride).zip(out.iter_mut()) {
            self.lb.average_into(row, 1.0, &mut avg);
            *slot = euclidean(&self.q_avg, &avg);
        }
    }
}

impl DistanceMeasure for LbAvg {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        euclidean(&self.average(x), &self.average(y))
    }

    fn name(&self) -> &'static str {
        "LB_Avg"
    }

    fn cache_signature(&self) -> Option<u64> {
        let mut sig =
            crate::cache::signature_with(0xcbf2_9ce4_8422_2325, self.centroids.len() as u64);
        for r in &self.centroids {
            sig = crate::cache::signature_with(sig, crate::cache::signature_of(r));
        }
        Some(sig)
    }

    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(AvgKernel {
            lb: self,
            q_avg: self.average(q),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::ExactEmd;
    use super::*;
    use crate::ground::BinGrid;
    use crate::lower_bounds::test_support::random_pair;

    #[test]
    fn average_of_point_mass_is_its_centroid() {
        let grid = BinGrid::new(vec![2, 2]);
        let lb = LbAvg::new(grid.centroids().to_vec());
        let x = Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(lb.average(&x), grid.centroid(0).to_vec());
    }

    #[test]
    fn distance_between_point_masses_is_centroid_distance() {
        let grid = BinGrid::new(vec![2, 2]);
        let lb = LbAvg::new(grid.centroids().to_vec());
        let x = Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let expect = crate::ground::euclidean(grid.centroid(0), grid.centroid(3));
        assert!((lb.distance(&x, &y) - expect).abs() < 1e-12);
        // ... and for point masses the EMD equals that exactly (tight).
        let exact = ExactEmd::new(grid.cost_matrix()).distance(&x, &y);
        assert!((lb.distance(&x, &y) - exact).abs() < 1e-12);
    }

    #[test]
    fn lower_bounds_emd_on_random_pairs() {
        for seed in 100..130 {
            let axes = vec![4, 4, 4];
            let grid = BinGrid::new(axes.clone());
            let (x, y, cost) = random_pair(seed, axes);
            let lb = LbAvg::new(grid.centroids().to_vec()).distance(&x, &y);
            let exact = ExactEmd::new(cost).distance(&x, &y);
            assert!(lb <= exact + 1e-9, "seed {seed}: {lb} > {exact}");
        }
    }

    #[test]
    fn symmetric_masses_cancel() {
        // Uniform histograms share the center of mass regardless of shape.
        let grid = BinGrid::new(vec![2, 2]);
        let lb = LbAvg::new(grid.centroids().to_vec());
        let x = Histogram::new(vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        let y = Histogram::new(vec![0.0, 0.5, 0.5, 0.0]).unwrap();
        // Both average to the grid center: the bound collapses to zero even
        // though the EMD is positive — the weakness §4.1 describes.
        assert!(lb.distance(&x, &y) < 1e-12);
    }

    #[test]
    fn name() {
        let lb = LbAvg::new(vec![vec![0.0]]);
        assert_eq!(lb.name(), "LB_Avg");
    }
}
