//! The weighted Lp-norm lower bounds of §4.3–§4.5.
//!
//! All three share the same insight (§4.3): after the zero-cost diagonal
//! flow `f_ii = min(x_i, y_i)`, each bin still has `|x_i - y_i|` units of
//! mass that must travel to *some other* bin, paying at least the cheapest
//! off-diagonal cost of its row. Summing (L1), taking the maximum (L∞), or
//! root-of-squares (L2) of these per-bin floors yields a filter whose
//! iso-surface is a hyperdiamond, hyperrectangle, or hyperellipsoid hugging
//! the EMD's polytope from inside.
//!
//! Each bound stores its *unit-mass* weight vector (`c_ij`-derived, mass
//! folded out) at construction; evaluation applies the per-pair `1/m`
//! scale term by term. That per-term form is what makes the prepared
//! kernels ([`DistanceMeasure::prepare`]) bit-identical to the scalar
//! path: the kernel folds `1/m` into the weight vector once per query and
//! then performs exactly the same multiply/abs/accumulate sequence per
//! candidate.

use super::kernel::DistanceKernel;
use super::DistanceMeasure;
use crate::histogram::Histogram;
use earthmover_transport::CostMatrix;
use std::marker::PhantomData;

/// Per-row minimum off-diagonal costs `min_{j≠i} c_ij` — the raw weights
/// shared by [`LbManhattan`], [`LbMax`], and [`LbEuclidean`] before the
/// `1/(2m)` (resp. `1/m`) normalization that happens at evaluation time.
///
/// For a single-bin matrix there is no off-diagonal entry; the weight is 0
/// (the EMD between single-bin equal-mass histograms is 0 as well, so the
/// bound stays valid and tight).
pub fn min_off_diagonal_costs(cost: &CostMatrix) -> Vec<f64> {
    let n = cost.len();
    (0..n)
        .map(|i| {
            let row = cost.row(i);
            row.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min)
        })
        .map(|w| if w.is_finite() { w } else { 0.0 })
        .collect()
}

/// Scales unit-mass weights by `1/mass` into a fresh vector. A
/// non-positive mass degenerates to all-zero weights, matching the
/// `m <= 0 → 0.0` guard of the scalar distances.
fn scaled_unit_weights(unit: &[f64], mass: f64) -> Vec<f64> {
    let inv = if mass > 0.0 { 1.0 / mass } else { 0.0 };
    unit.iter().map(|u| u * inv).collect()
}

/// Weighted Manhattan lower bound `LB_Man` (Theorem, §4.3):
///
/// ```text
/// EMD(x, y) ≥ Σ_i  min_{j≠i}{ c_ij / (2m) } · |x_i − y_i|
/// ```
///
/// Geometrically a hyperdiamond; the best of the Lp bounds in the paper's
/// experiments and the basis of the reduced 3-D index filter of §4.7.
#[derive(Debug, Clone)]
pub struct LbManhattan {
    /// `min_{j≠i} c_ij` per bin.
    min_costs: Vec<f64>,
    /// `min_{j≠i} c_ij / 2` per bin — the mass-1 weights, precomputed so
    /// per-pair evaluation only multiplies by `1/m`.
    unit_weights: Vec<f64>,
}

impl LbManhattan {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        let min_costs = min_off_diagonal_costs(cost);
        let unit_weights = min_costs.iter().map(|c| c * 0.5).collect();
        LbManhattan {
            min_costs,
            unit_weights,
        }
    }

    /// The per-bin weights for a given total mass: `min_{j≠i} c_ij / (2m)`.
    ///
    /// Allocates; hot paths use [`LbManhattan::scale_weights`] or the
    /// unit-mass vector from [`LbManhattan::unit_weights`] directly.
    pub fn weights(&self, mass: f64) -> Vec<f64> {
        scaled_unit_weights(&self.unit_weights, mass)
    }

    /// Writes the per-bin weights for a given total mass into `out`,
    /// reusing its storage (no allocation).
    pub fn scale_weights(&self, mass: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.unit_weights.len(), "arity mismatch");
        let inv = if mass > 0.0 { 1.0 / mass } else { 0.0 };
        for (o, u) in out.iter_mut().zip(&self.unit_weights) {
            *o = u * inv;
        }
    }

    /// The precomputed unit-mass weights `min_{j≠i} c_ij / 2`.
    pub fn unit_weights(&self) -> &[f64] {
        &self.unit_weights
    }

    /// Raw per-bin minimum off-diagonal costs.
    pub fn min_costs(&self) -> &[f64] {
        &self.min_costs
    }
}

impl DistanceMeasure for LbManhattan {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.unit_weights.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        let inv = 1.0 / m;
        self.unit_weights
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(u, (xi, yi))| (u * inv) * (xi - yi).abs())
            .sum()
    }

    fn name(&self) -> &'static str {
        "LB_Man"
    }

    fn cache_signature(&self) -> Option<u64> {
        Some(crate::cache::signature_of(&self.unit_weights))
    }

    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(LpKernel::<ManFold>::new(&self.unit_weights, q))
    }
}

/// Weighted maximum-norm lower bound `LB_Max` (§4.4):
///
/// ```text
/// EMD(x, y) ≥ max_i { min_{j≠i}{ c_ij / m } · |x_i − y_i| }
/// ```
///
/// Note the denominator is `m`, not `2m`: restricting attention to the
/// bins where `x_i ≤ y_i` (or symmetric) lets the proof keep the full flow
/// difference for the single maximizing bin.
#[derive(Debug, Clone)]
pub struct LbMax {
    /// `min_{j≠i} c_ij` per bin — already the mass-1 weights for this
    /// bound (no `/2`).
    min_costs: Vec<f64>,
}

impl LbMax {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        LbMax {
            min_costs: min_off_diagonal_costs(cost),
        }
    }
}

impl DistanceMeasure for LbMax {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.min_costs.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        let inv = 1.0 / m;
        self.min_costs
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(u, (xi, yi))| (u * inv) * (xi - yi).abs())
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "LB_Max"
    }

    fn cache_signature(&self) -> Option<u64> {
        Some(crate::cache::signature_of(&self.min_costs))
    }

    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(LpKernel::<MaxFold>::new(&self.min_costs, q))
    }
}

/// Weighted Euclidean lower bound `LB_Eucl` (§4.5):
///
/// ```text
/// EMD(x, y) ≥ sqrt( Σ_i ( min_{j≠i}{ c_ij / (2m) } )² (x_i − y_i)² )
/// ```
///
/// Provably dominated by [`LbManhattan`] (its hyperellipsoid encloses the
/// hyperdiamond), implemented for completeness and measured in the
/// experiments exactly as the paper did before dropping it from the plots.
#[derive(Debug, Clone)]
pub struct LbEuclidean {
    /// `min_{j≠i} c_ij / 2` per bin — the mass-1 weights.
    unit_weights: Vec<f64>,
}

impl LbEuclidean {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        LbEuclidean {
            unit_weights: min_off_diagonal_costs(cost)
                .iter()
                .map(|c| c * 0.5)
                .collect(),
        }
    }
}

impl DistanceMeasure for LbEuclidean {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.unit_weights.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        let inv = 1.0 / m;
        let sum: f64 = self
            .unit_weights
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(u, (xi, yi))| {
                let t = (u * inv) * (xi - yi);
                t * t
            })
            .sum();
        sum.sqrt()
    }

    fn name(&self) -> &'static str {
        "LB_Eucl"
    }

    fn cache_signature(&self) -> Option<u64> {
        Some(crate::cache::signature_of(&self.unit_weights))
    }

    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(LpKernel::<EuclFold>::new(&self.unit_weights, q))
    }
}

/// Per-term/accumulator strategy distinguishing the three L_p kernels.
/// Every method mirrors one floating-point operation of the matching
/// scalar `distance` exactly — the kernels derive their bit-identity
/// guarantee from this correspondence.
trait LpFold: Send + Sync {
    /// Accumulator start value.
    const INIT: f64;
    /// One per-bin floor term from prefolded weight `w = u/m`.
    fn term(w: f64, q: f64, c: f64) -> f64;
    /// Accumulation step (sum or max).
    fn reduce(acc: f64, t: f64) -> f64;
    /// Final transform of the accumulator.
    fn finish(acc: f64) -> f64 {
        acc
    }
}

/// L1 fold: `Σ w_i |q_i − c_i|`.
struct ManFold;

impl LpFold for ManFold {
    const INIT: f64 = 0.0;
    fn term(w: f64, q: f64, c: f64) -> f64 {
        w * (q - c).abs()
    }
    fn reduce(acc: f64, t: f64) -> f64 {
        acc + t
    }
}

/// L∞ fold: `max_i w_i |q_i − c_i|`.
struct MaxFold;

impl LpFold for MaxFold {
    const INIT: f64 = 0.0;
    fn term(w: f64, q: f64, c: f64) -> f64 {
        w * (q - c).abs()
    }
    fn reduce(acc: f64, t: f64) -> f64 {
        // Equals `acc.max(t)` on the kernel's domain (terms are products
        // of finite non-negative values, never NaN) but lowers to a bare
        // `maxsd` instead of max-plus-NaN-select, which matters in the
        // 8-lane block loop.
        if t > acc {
            t
        } else {
            acc
        }
    }
}

/// L2 fold: `sqrt(Σ (w_i (q_i − c_i))²)`.
struct EuclFold;

impl LpFold for EuclFold {
    const INIT: f64 = 0.0;
    fn term(w: f64, q: f64, c: f64) -> f64 {
        let t = w * (q - c);
        t * t
    }
    fn reduce(acc: f64, t: f64) -> f64 {
        acc + t
    }
    fn finish(acc: f64) -> f64 {
        acc.sqrt()
    }
}

/// Shared query-compiled kernel for the three L_p bounds: the query bins
/// and the mass-prefolded weight vector are fixed at
/// [`DistanceMeasure::prepare`] time, so the per-candidate loop touches
/// only the candidate row. [`DistanceKernel::eval_block`] additionally
/// processes sixteen candidate rows per weight-vector traversal, first
/// transposing the tile so the lanes sit contiguously per bin — that
/// turns the lane update into packed SIMD operations while keeping each
/// row's operation order — and therefore its result — identical to
/// [`DistanceKernel::eval`].
struct LpKernel<F: LpFold> {
    /// Prefolded weights `u_i / m` for the prepared query's mass.
    w: Vec<f64>,
    /// The prepared query's bins.
    q: Vec<f64>,
    _fold: PhantomData<F>,
}

impl<F: LpFold> LpKernel<F> {
    fn new(unit_weights: &[f64], q: &Histogram) -> Self {
        debug_assert_eq!(unit_weights.len(), q.len(), "arity mismatch");
        LpKernel {
            w: scaled_unit_weights(unit_weights, q.mass()),
            q: q.bins().to_vec(),
            _fold: PhantomData,
        }
    }
}

impl<F: LpFold> LpKernel<F> {
    /// The blocked loop body, compiled for the crate's baseline target.
    /// [`LpKernel::eval_block_avx`] re-compiles this exact body with AVX
    /// enabled; `inline(always)` lets the wider vector units apply to it.
    #[inline(always)]
    fn eval_block_portable(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert_eq!(block.len(), stride * out.len(), "block/out shape mismatch");
        debug_assert_eq!(stride, self.q.len(), "arity mismatch");
        // Sixteen independent accumulator lanes, one per candidate row.
        // Each 16-row tile is first transposed (as two 8-row half-tiles)
        // into bin-major order so bin `i` of every row in a half-tile is
        // contiguous in its scratch buffer — the lane update then
        // auto-vectorizes into packed subtract/abs/multiply/accumulate,
        // and sixteen lanes give the vector units enough independent
        // accumulate chains to hide FP latency. Vectorizing *across* rows
        // leaves every row's own fold strictly sequential over bins,
        // which is the bit-identity requirement.
        const HALF: usize = 8;
        const LANES: usize = 2 * HALF;
        let mut scratch = vec![0.0f64; 2 * stride * HALF];
        let (lo_scratch, hi_scratch) = scratch.split_at_mut(stride * HALF);
        let mut tiles = block.chunks_exact(stride * LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (tile, slots) in tiles.by_ref().zip(outs.by_ref()) {
            // Transpose: scratch[i * HALF + r] = row r, bin i. Walking the
            // eight rows in lockstep keeps the stores contiguous per bin.
            let (lo_rows, hi_rows) = tile.split_at(stride * HALF);
            for (rows, scratch) in [(lo_rows, &mut *lo_scratch), (hi_rows, &mut *hi_scratch)] {
                let (r0, rest) = rows.split_at(stride);
                let (r1, rest) = rest.split_at(stride);
                let (r2, rest) = rest.split_at(stride);
                let (r3, rest) = rest.split_at(stride);
                let (r4, rest) = rest.split_at(stride);
                let (r5, rest) = rest.split_at(stride);
                let (r6, r7) = rest.split_at(stride);
                let low = r0.iter().zip(r1).zip(r2).zip(r3);
                let high = r4.iter().zip(r5).zip(r6).zip(r7);
                for ((lanes, (((&c0, &c1), &c2), &c3)), (((&c4, &c5), &c6), &c7)) in
                    scratch.chunks_exact_mut(HALF).zip(low).zip(high)
                {
                    lanes.copy_from_slice(&[c0, c1, c2, c3, c4, c5, c6, c7]);
                }
            }
            let mut a0 = F::INIT;
            let mut a1 = F::INIT;
            let mut a2 = F::INIT;
            let mut a3 = F::INIT;
            let mut a4 = F::INIT;
            let mut a5 = F::INIT;
            let mut a6 = F::INIT;
            let mut a7 = F::INIT;
            let mut a8 = F::INIT;
            let mut a9 = F::INIT;
            let mut a10 = F::INIT;
            let mut a11 = F::INIT;
            let mut a12 = F::INIT;
            let mut a13 = F::INIT;
            let mut a14 = F::INIT;
            let mut a15 = F::INIT;
            for (((&w, &q), lo), hi) in self
                .w
                .iter()
                .zip(&self.q)
                .zip(lo_scratch.chunks_exact(HALF))
                .zip(hi_scratch.chunks_exact(HALF))
            {
                let &[c0, c1, c2, c3, c4, c5, c6, c7] = lo else {
                    continue;
                };
                let &[c8, c9, c10, c11, c12, c13, c14, c15] = hi else {
                    continue;
                };
                a0 = F::reduce(a0, F::term(w, q, c0));
                a1 = F::reduce(a1, F::term(w, q, c1));
                a2 = F::reduce(a2, F::term(w, q, c2));
                a3 = F::reduce(a3, F::term(w, q, c3));
                a4 = F::reduce(a4, F::term(w, q, c4));
                a5 = F::reduce(a5, F::term(w, q, c5));
                a6 = F::reduce(a6, F::term(w, q, c6));
                a7 = F::reduce(a7, F::term(w, q, c7));
                a8 = F::reduce(a8, F::term(w, q, c8));
                a9 = F::reduce(a9, F::term(w, q, c9));
                a10 = F::reduce(a10, F::term(w, q, c10));
                a11 = F::reduce(a11, F::term(w, q, c11));
                a12 = F::reduce(a12, F::term(w, q, c12));
                a13 = F::reduce(a13, F::term(w, q, c13));
                a14 = F::reduce(a14, F::term(w, q, c14));
                a15 = F::reduce(a15, F::term(w, q, c15));
            }
            let accs = [
                a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15,
            ];
            for (slot, a) in slots.iter_mut().zip(accs) {
                *slot = F::finish(a);
            }
        }
        for (row, slot) in tiles
            .remainder()
            .chunks_exact(stride)
            .zip(outs.into_remainder())
        {
            *slot = self.eval(row);
        }
    }

    /// [`LpKernel::eval_block_portable`] recompiled with 256-bit vectors.
    ///
    /// AVX only widens the registers; every lane still performs the same
    /// IEEE-754 subtract/abs/multiply/accumulate sequence (no FMA
    /// contraction — that is a separate target feature, deliberately not
    /// enabled), so results stay bit-identical to the portable build.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    fn eval_block_avx(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        self.eval_block_portable(block, stride, out);
    }
}

impl<F: LpFold> DistanceKernel for LpKernel<F> {
    fn eval(&self, cand: &[f64]) -> f64 {
        debug_assert_eq!(cand.len(), self.q.len(), "arity mismatch");
        let acc = self
            .w
            .iter()
            .zip(self.q.iter().zip(cand))
            .fold(F::INIT, |acc, (&w, (&q, &c))| {
                F::reduce(acc, F::term(w, q, c))
            });
        F::finish(acc)
    }

    fn eval_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: the call is guarded by runtime AVX detection, which
            // is the sole requirement of the `target_feature` function; it
            // executes the identical portable body on wider vectors.
            #[allow(unsafe_code)]
            unsafe {
                self.eval_block_avx(block, stride, out);
            }
            return;
        }
        self.eval_block_portable(block, stride, out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{line_cost, paper_example, random_pair};
    use super::super::ExactEmd;
    use super::*;

    #[test]
    fn min_costs_skip_diagonal() {
        let cost = line_cost(4);
        assert_eq!(min_off_diagonal_costs(&cost), vec![1.0; 4]);
    }

    #[test]
    fn single_bin_weight_is_zero() {
        let cost = line_cost(1);
        assert_eq!(min_off_diagonal_costs(&cost), vec![0.0]);
    }

    #[test]
    fn manhattan_formula() {
        // Mass 2 histograms over the line metric: weights are 1/(2*2).
        let lb = LbManhattan::new(&line_cost(3));
        let x = Histogram::new(vec![2.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 2.0]).unwrap();
        // |2-0| + |0-0| + |0-2| = 4; 4 / (2*2) = 1.
        assert!((lb.distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_formula() {
        let lb = LbMax::new(&line_cost(3));
        let x = Histogram::new(vec![2.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 2.0]).unwrap();
        // max_i |x_i - y_i| * 1 / m = 2/2 = 1.
        assert!((lb.distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_dominated_by_manhattan() {
        // §4.5: LB_Eucl ≤ LB_Man pointwise.
        for seed in 0..30 {
            let (x, y, cost) = random_pair(seed, vec![4, 4]);
            let man = LbManhattan::new(&cost).distance(&x, &y);
            let eucl = LbEuclidean::new(&cost).distance(&x, &y);
            assert!(
                eucl <= man + 1e-12,
                "seed {seed}: LB_Eucl {eucl} > LB_Man {man}"
            );
        }
    }

    #[test]
    fn all_lp_bounds_lower_bound_emd_on_paper_example() {
        let (x, y, cost) = paper_example();
        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
        for lb in [
            LbManhattan::new(&cost).distance(&x, &y),
            LbMax::new(&cost).distance(&x, &y),
            LbEuclidean::new(&cost).distance(&x, &y),
        ] {
            assert!(lb <= exact + 1e-12, "{lb} > {exact}");
        }
    }

    #[test]
    fn identical_histograms_have_zero_bound() {
        let (x, _, cost) = paper_example();
        assert_eq!(LbManhattan::new(&cost).distance(&x, &x), 0.0);
        assert_eq!(LbMax::new(&cost).distance(&x, &x), 0.0);
        assert_eq!(LbEuclidean::new(&cost).distance(&x, &x), 0.0);
    }

    #[test]
    fn weights_scale_with_mass() {
        let lb = LbManhattan::new(&line_cost(3));
        let w1 = lb.weights(1.0);
        let w2 = lb.weights(2.0);
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_weights_matches_weights() {
        let lb = LbManhattan::new(&line_cost(5));
        let mut scratch = vec![0.0; 5];
        for mass in [0.5, 1.0, 3.0] {
            lb.scale_weights(mass, &mut scratch);
            assert_eq!(scratch, lb.weights(mass));
        }
        // Degenerate mass falls back to zero weights, matching the
        // scalar distance's `m <= 0` guard.
        lb.scale_weights(0.0, &mut scratch);
        assert_eq!(scratch, vec![0.0; 5]);
    }

    #[test]
    fn kernels_match_scalar_bitwise() {
        let (x, y, cost) = paper_example();
        let measures: [&dyn DistanceMeasure; 3] = [
            &LbManhattan::new(&cost),
            &LbMax::new(&cost),
            &LbEuclidean::new(&cost),
        ];
        let xn = x.into_normalized().unwrap();
        let yn = y.into_normalized().unwrap();
        for m in measures {
            let kernel = m.prepare(&xn);
            assert_eq!(
                kernel.eval(yn.bins()),
                m.distance(&xn, &yn),
                "{} kernel drifted from scalar path",
                m.name()
            );
        }
    }

    #[test]
    fn blocked_eval_matches_per_row_eval() {
        // 19 rows exercises one full 16-row tile plus a 3-row remainder.
        let cost = line_cost(4);
        let mut rows = Vec::new();
        for seed in 0..19 {
            let (h, _, _) = random_pair(seed, vec![4]);
            rows.extend_from_slice(h.bins());
        }
        let (q, _, _) = random_pair(99, vec![4]);
        let measures: [&dyn DistanceMeasure; 3] = [
            &LbManhattan::new(&cost),
            &LbMax::new(&cost),
            &LbEuclidean::new(&cost),
        ];
        for m in measures {
            let kernel = m.prepare(&q);
            let mut out = vec![0.0; 19];
            kernel.eval_block(&rows, 4, &mut out);
            for (row, got) in rows.chunks_exact(4).zip(&out) {
                assert_eq!(*got, kernel.eval(row), "{} block drifted", m.name());
            }
        }
    }

    #[test]
    fn names() {
        let cost = line_cost(2);
        assert_eq!(LbManhattan::new(&cost).name(), "LB_Man");
        assert_eq!(LbMax::new(&cost).name(), "LB_Max");
        assert_eq!(LbEuclidean::new(&cost).name(), "LB_Eucl");
    }
}
