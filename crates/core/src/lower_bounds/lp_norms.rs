//! The weighted Lp-norm lower bounds of §4.3–§4.5.
//!
//! All three share the same insight (§4.3): after the zero-cost diagonal
//! flow `f_ii = min(x_i, y_i)`, each bin still has `|x_i - y_i|` units of
//! mass that must travel to *some other* bin, paying at least the cheapest
//! off-diagonal cost of its row. Summing (L1), taking the maximum (L∞), or
//! root-of-squares (L2) of these per-bin floors yields a filter whose
//! iso-surface is a hyperdiamond, hyperrectangle, or hyperellipsoid hugging
//! the EMD's polytope from inside.

use super::DistanceMeasure;
use crate::histogram::Histogram;
use earthmover_transport::CostMatrix;

/// Per-row minimum off-diagonal costs `min_{j≠i} c_ij` — the raw weights
/// shared by [`LbManhattan`], [`LbMax`], and [`LbEuclidean`] before the
/// `1/(2m)` (resp. `1/m`) normalization that happens at evaluation time.
///
/// For a single-bin matrix there is no off-diagonal entry; the weight is 0
/// (the EMD between single-bin equal-mass histograms is 0 as well, so the
/// bound stays valid and tight).
pub fn min_off_diagonal_costs(cost: &CostMatrix) -> Vec<f64> {
    let n = cost.len();
    (0..n)
        .map(|i| {
            let row = cost.row(i);
            row.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min)
        })
        .map(|w| if w.is_finite() { w } else { 0.0 })
        .collect()
}

/// Weighted Manhattan lower bound `LB_Man` (Theorem, §4.3):
///
/// ```text
/// EMD(x, y) ≥ Σ_i  min_{j≠i}{ c_ij / (2m) } · |x_i − y_i|
/// ```
///
/// Geometrically a hyperdiamond; the best of the Lp bounds in the paper's
/// experiments and the basis of the reduced 3-D index filter of §4.7.
#[derive(Debug, Clone)]
pub struct LbManhattan {
    /// `min_{j≠i} c_ij` per bin (division by `2m` happens per pair).
    min_costs: Vec<f64>,
}

impl LbManhattan {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        LbManhattan {
            min_costs: min_off_diagonal_costs(cost),
        }
    }

    /// The per-bin weights for a given total mass: `min_{j≠i} c_ij / (2m)`.
    pub fn weights(&self, mass: f64) -> Vec<f64> {
        self.min_costs.iter().map(|c| c / (2.0 * mass)).collect()
    }

    /// Raw per-bin minimum off-diagonal costs.
    pub fn min_costs(&self) -> &[f64] {
        &self.min_costs
    }
}

impl DistanceMeasure for LbManhattan {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.min_costs.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        let sum: f64 = self
            .min_costs
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(c, (xi, yi))| c * (xi - yi).abs())
            .sum();
        sum / (2.0 * m)
    }

    fn name(&self) -> &'static str {
        "LB_Man"
    }
}

/// Weighted maximum-norm lower bound `LB_Max` (§4.4):
///
/// ```text
/// EMD(x, y) ≥ max_i { min_{j≠i}{ c_ij / m } · |x_i − y_i| }
/// ```
///
/// Note the denominator is `m`, not `2m`: restricting attention to the
/// bins where `x_i ≤ y_i` (or symmetric) lets the proof keep the full flow
/// difference for the single maximizing bin.
#[derive(Debug, Clone)]
pub struct LbMax {
    min_costs: Vec<f64>,
}

impl LbMax {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        LbMax {
            min_costs: min_off_diagonal_costs(cost),
        }
    }
}

impl DistanceMeasure for LbMax {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.min_costs.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        self.min_costs
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(c, (xi, yi))| c * (xi - yi).abs())
            .fold(0.0, f64::max)
            / m
    }

    fn name(&self) -> &'static str {
        "LB_Max"
    }
}

/// Weighted Euclidean lower bound `LB_Eucl` (§4.5):
///
/// ```text
/// EMD(x, y) ≥ sqrt( Σ_i ( min_{j≠i}{ c_ij / (2m) } )² (x_i − y_i)² )
/// ```
///
/// Provably dominated by [`LbManhattan`] (its hyperellipsoid encloses the
/// hyperdiamond), implemented for completeness and measured in the
/// experiments exactly as the paper did before dropping it from the plots.
#[derive(Debug, Clone)]
pub struct LbEuclidean {
    min_costs: Vec<f64>,
}

impl LbEuclidean {
    /// Derives the filter weights from a ground-distance cost matrix.
    pub fn new(cost: &CostMatrix) -> Self {
        LbEuclidean {
            min_costs: min_off_diagonal_costs(cost),
        }
    }
}

impl DistanceMeasure for LbEuclidean {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.min_costs.len(), "arity mismatch");
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        let sum: f64 = self
            .min_costs
            .iter()
            .zip(x.bins().iter().zip(y.bins()))
            .map(|(c, (xi, yi))| {
                let t = c * (xi - yi);
                t * t
            })
            .sum();
        sum.sqrt() / (2.0 * m)
    }

    fn name(&self) -> &'static str {
        "LB_Eucl"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{line_cost, paper_example, random_pair};
    use super::super::ExactEmd;
    use super::*;

    #[test]
    fn min_costs_skip_diagonal() {
        let cost = line_cost(4);
        assert_eq!(min_off_diagonal_costs(&cost), vec![1.0; 4]);
    }

    #[test]
    fn single_bin_weight_is_zero() {
        let cost = line_cost(1);
        assert_eq!(min_off_diagonal_costs(&cost), vec![0.0]);
    }

    #[test]
    fn manhattan_formula() {
        // Mass 2 histograms over the line metric: weights are 1/(2*2).
        let lb = LbManhattan::new(&line_cost(3));
        let x = Histogram::new(vec![2.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 2.0]).unwrap();
        // |2-0| + |0-0| + |0-2| = 4; 4 / (2*2) = 1.
        assert!((lb.distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_formula() {
        let lb = LbMax::new(&line_cost(3));
        let x = Histogram::new(vec![2.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 2.0]).unwrap();
        // max_i |x_i - y_i| * 1 / m = 2/2 = 1.
        assert!((lb.distance(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_dominated_by_manhattan() {
        // §4.5: LB_Eucl ≤ LB_Man pointwise.
        for seed in 0..30 {
            let (x, y, cost) = random_pair(seed, vec![4, 4]);
            let man = LbManhattan::new(&cost).distance(&x, &y);
            let eucl = LbEuclidean::new(&cost).distance(&x, &y);
            assert!(
                eucl <= man + 1e-12,
                "seed {seed}: LB_Eucl {eucl} > LB_Man {man}"
            );
        }
    }

    #[test]
    fn all_lp_bounds_lower_bound_emd_on_paper_example() {
        let (x, y, cost) = paper_example();
        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
        for lb in [
            LbManhattan::new(&cost).distance(&x, &y),
            LbMax::new(&cost).distance(&x, &y),
            LbEuclidean::new(&cost).distance(&x, &y),
        ] {
            assert!(lb <= exact + 1e-12, "{lb} > {exact}");
        }
    }

    #[test]
    fn identical_histograms_have_zero_bound() {
        let (x, _, cost) = paper_example();
        assert_eq!(LbManhattan::new(&cost).distance(&x, &x), 0.0);
        assert_eq!(LbMax::new(&cost).distance(&x, &x), 0.0);
        assert_eq!(LbEuclidean::new(&cost).distance(&x, &x), 0.0);
    }

    #[test]
    fn weights_scale_with_mass() {
        let lb = LbManhattan::new(&line_cost(3));
        let w1 = lb.weights(1.0);
        let w2 = lb.weights(2.0);
        for (a, b) in w1.iter().zip(&w2) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn names() {
        let cost = line_cost(2);
        assert_eq!(LbManhattan::new(&cost).name(), "LB_Man");
        assert_eq!(LbMax::new(&cost).name(), "LB_Max");
        assert_eq!(LbEuclidean::new(&cost).name(), "LB_Eucl");
    }
}
