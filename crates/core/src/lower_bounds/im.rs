//! The Independent Minimization lower bound `LB_IM` (§4.6) — the paper's
//! key filter for high-dimensional histograms.

use super::kernel::DistanceKernel;
use super::DistanceMeasure;
use crate::histogram::Histogram;
use earthmover_transport::CostMatrix;

/// The Independent Minimization lower bound:
///
/// ```text
/// LB_IM(x, y) = min { Σ_ij (c_ij / m) f_ij :
///                     f_ij ≥ 0, Σ_j f_ij = x_i, f_ij ≤ y_j }
/// ```
///
/// Compared to the EMD, the column constraint `Σ_i f_ij = y_j` is relaxed
/// to a *per-row capacity* `f_ij ≤ y_j`. The search space grows, so the
/// minimum can only shrink — the lower-bounding proof of §4.6. The payoff
/// is decomposition: each row `i` becomes an independent fractional
/// greedy problem (“pour `x_i` units into the cheapest bins of row `i`,
/// capped at `y_j` each”), solvable in `O(n)` per row after the cost rows
/// are sorted once at construction. No simplex, no global coupling.
///
/// Two refinements from the paper are implemented and on by default:
///
/// 1. **Diagonal reduction** (`refine_diagonal`): the flow between
///    corresponding bins is free (`c_ii = 0`) and always maximal
///    (`f_ii = min(x_i, y_i)`), so both histograms are first reduced by
///    their common mass. This *lowers the caps* `y_j` and strictly
///    improves selectivity.
/// 2. **Symmetric maximization** (`symmetric`): relaxing the row
///    constraints instead of the column constraints is equally valid, so
///    `max(LB_IM(x, y), LB_IM(y, x))` is the tighter complete filter.
#[derive(Debug, Clone)]
pub struct LbIm {
    cost: CostMatrix,
    /// Per row `i`, the column indices sorted by ascending `c_ij`
    /// (ties by index, for determinism).
    sorted_rows: Vec<Vec<u32>>,
    /// Like `sorted_rows` but for the transposed matrix (used when
    /// evaluating the swapped direction `LB_IM(y, x)`).
    sorted_cols: Vec<Vec<u32>>,
    refine_diagonal: bool,
    symmetric: bool,
}

impl LbIm {
    /// Builds the bound with both refinements enabled — the configuration
    /// the paper evaluates.
    pub fn new(cost: &CostMatrix) -> Self {
        Self::with_options(cost, true, true)
    }

    /// Builds the bound with explicit refinement toggles; used by the
    /// ablation benchmarks to quantify what each refinement buys.
    pub fn with_options(cost: &CostMatrix, refine_diagonal: bool, symmetric: bool) -> Self {
        let n = cost.len();
        let mut sorted_rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut order: Vec<u32> = (0..n as u32).collect();
            let row = cost.row(i);
            order.sort_by(|&a, &b| row[a as usize].total_cmp(&row[b as usize]).then(a.cmp(&b)));
            sorted_rows.push(order);
        }
        let mut sorted_cols = Vec::with_capacity(n);
        for j in 0..n {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by(|&a, &b| {
                cost.get(a as usize, j)
                    .total_cmp(&cost.get(b as usize, j))
                    .then(a.cmp(&b))
            });
            sorted_cols.push(order);
        }
        LbIm {
            cost: cost.clone(),
            sorted_rows,
            sorted_cols,
            refine_diagonal,
            symmetric,
        }
    }

    /// Whether diagonal reduction is enabled.
    pub fn refines_diagonal(&self) -> bool {
        self.refine_diagonal
    }

    /// Whether symmetric maximization is enabled.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// One direction of the bound, *unnormalized* (no `/m`), matching the
    /// arithmetic of the paper's §4.6 worked example.
    ///
    /// `transposed = false` evaluates `LB_IM(x, y)` using the cost rows;
    /// `transposed = true` evaluates the swapped direction with cost
    /// columns, i.e. sources draw from `y` and caps come from `x`.
    fn one_direction(&self, source: &[f64], caps: &[f64], transposed: bool) -> f64 {
        let orders = if transposed {
            &self.sorted_cols
        } else {
            &self.sorted_rows
        };
        let mut total = 0.0;
        for (i, &si) in source.iter().enumerate() {
            if si <= 0.0 {
                continue;
            }
            let mut remaining = si;
            for &j in &orders[i] {
                let j = j as usize;
                let cap = caps[j];
                if cap <= 0.0 {
                    continue;
                }
                let c = if transposed {
                    self.cost.get(j, i)
                } else {
                    self.cost.get(i, j)
                };
                let take = remaining.min(cap);
                total += take * c;
                remaining -= take;
                if remaining <= 1e-15 * si {
                    break;
                }
            }
            // Any residual (possible only through floating-point dust when
            // the caps sum to exactly the source mass) is dropped, which
            // can only lower the bound — completeness is preserved.
        }
        total
    }

    /// Evaluates the raw (unnormalized) bound value, exposing the
    /// configuration arithmetic for tests and the ablation bench.
    pub fn raw(&self, x: &Histogram, y: &Histogram) -> f64 {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        self.raw_bins_with_scratch(x.bins(), y.bins(), &mut xs, &mut ys)
    }

    /// [`LbIm::raw`] over raw bin slices, reusing caller scratch for the
    /// diagonally-reduced copies — the allocation-free core the block
    /// kernel loops over.
    fn raw_bins_with_scratch(
        &self,
        x: &[f64],
        y: &[f64],
        xs: &mut Vec<f64>,
        ys: &mut Vec<f64>,
    ) -> f64 {
        debug_assert_eq!(x.len(), self.cost.len(), "arity mismatch");
        debug_assert_eq!(y.len(), self.cost.len(), "arity mismatch");
        xs.clear();
        ys.clear();
        if self.refine_diagonal {
            for (a, b) in x.iter().zip(y) {
                let d = a.min(*b);
                xs.push(a - d);
                ys.push(b - d);
            }
        } else {
            xs.extend_from_slice(x);
            ys.extend_from_slice(y);
        }
        let forward = self.one_direction(xs, ys, false);
        if self.symmetric {
            let backward = self.one_direction(ys, xs, true);
            forward.max(backward)
        } else {
            forward
        }
    }
}

/// Query-compiled [`LbIm`] kernel: the query bins and mass are fixed at
/// [`DistanceMeasure::prepare`] time, and the block path reuses one pair
/// of diagonal-reduction scratch vectors across all candidates instead
/// of allocating two per pair. The greedy orders themselves live on the
/// parent [`LbIm`] (they depend only on the cost matrix).
struct ImKernel<'m> {
    im: &'m LbIm,
    /// The prepared query's bins.
    q: Vec<f64>,
    /// The prepared query's total mass (the `1/m` normalizer).
    m: f64,
}

impl DistanceKernel for ImKernel<'_> {
    fn eval(&self, cand: &[f64]) -> f64 {
        if self.m <= 0.0 {
            return 0.0;
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        self.im
            .raw_bins_with_scratch(&self.q, cand, &mut xs, &mut ys)
            / self.m
    }

    fn eval_block(&self, block: &[f64], stride: usize, out: &mut [f64]) {
        debug_assert_eq!(block.len(), stride * out.len(), "block/out shape mismatch");
        if self.m <= 0.0 {
            for slot in out.iter_mut() {
                *slot = 0.0;
            }
            return;
        }
        let mut xs = Vec::with_capacity(stride);
        let mut ys = Vec::with_capacity(stride);
        for (row, slot) in block.chunks_exact(stride).zip(out.iter_mut()) {
            *slot = self
                .im
                .raw_bins_with_scratch(&self.q, row, &mut xs, &mut ys)
                / self.m;
        }
    }
}

impl DistanceMeasure for LbIm {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert!(x.mass_matches(y, 1e-7), "equal mass required");
        let m = x.mass();
        if m <= 0.0 {
            return 0.0;
        }
        self.raw(x, y) / m
    }

    fn name(&self) -> &'static str {
        "LB_IM"
    }

    fn cache_signature(&self) -> Option<u64> {
        let n = self.cost.len();
        let mut sig = crate::cache::signature_with(0xcbf2_9ce4_8422_2325, n as u64);
        for i in 0..n {
            sig = crate::cache::signature_with(sig, crate::cache::signature_of(self.cost.row(i)));
        }
        sig = crate::cache::signature_with(sig, self.refine_diagonal as u64);
        sig = crate::cache::signature_with(sig, self.symmetric as u64);
        Some(sig)
    }

    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(ImKernel {
            im: self,
            q: q.bins().to_vec(),
            m: q.mass(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{paper_example, random_pair};
    use super::super::{ExactEmd, LbManhattan};
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Balanced variant of the §4.6 example (see `paper_example` for why
        // the printed one is inconsistent): x = [4,3,5,4,5],
        // y = [1,2,3,8,7], line metric. Diagonal reduction gives
        // x' = [3,1,2,0,0], y' = [0,0,0,4,2].
        //
        // Forward (sources x', caps y'):
        //   row 0: 3 units → bin 3 at cost 3            = 9
        //   row 1: 1 unit  → bin 3 at cost 2            = 2
        //   row 2: 2 units → bin 3 at cost 1            = 2
        //   total 13.
        // Backward (sources y', caps x'):
        //   row 3: 2 → bin 2 (c 1), 1 → bin 1 (c 2), 1 → bin 0 (c 3) = 7
        //   row 4: 2 → bin 2 (c 2)                                   = 4
        //   total 11.
        // Symmetric max = 13.
        let (x, y, cost) = paper_example();
        let both = LbIm::new(&cost);
        assert!(
            (both.raw(&x, &y) - 13.0).abs() < 1e-12,
            "{}",
            both.raw(&x, &y)
        );
        let one_way = LbIm::with_options(&cost, true, false);
        assert!((one_way.raw(&x, &y) - 13.0).abs() < 1e-12);
        // The swapped direction alone gives 11.
        assert!(
            (one_way.raw(&y, &x) - 11.0).abs() < 1e-12,
            "{}",
            one_way.raw(&y, &x)
        );
        // Normalization by the mass 21.
        assert!((both.distance(&x, &y) - 13.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bounds_emd_on_random_pairs_all_configs() {
        for seed in 0..40 {
            let (x, y, cost) = random_pair(seed, vec![3, 3, 2]);
            let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
            for refine in [false, true] {
                for sym in [false, true] {
                    let lb = LbIm::with_options(&cost, refine, sym).distance(&x, &y);
                    assert!(
                        lb <= exact + 1e-9,
                        "seed {seed} refine={refine} sym={sym}: {lb} > {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn refinements_never_hurt() {
        for seed in 0..40 {
            let (x, y, cost) = random_pair(seed, vec![4, 4]);
            let base = LbIm::with_options(&cost, false, false).distance(&x, &y);
            let refined = LbIm::with_options(&cost, true, false).distance(&x, &y);
            let symmetric = LbIm::with_options(&cost, true, true).distance(&x, &y);
            assert!(refined >= base - 1e-12, "seed {seed}");
            assert!(symmetric >= refined - 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn tighter_than_manhattan() {
        // Not a theorem in the paper, but the experimental story (§5):
        // LB_IM dominates LB_Man in selectivity. Verify at least on random
        // data that LB_IM >= LB_Man holds pointwise here.
        let mut wins = 0;
        let mut total = 0;
        for seed in 0..40 {
            let (x, y, cost) = random_pair(seed, vec![4, 4]);
            let man = LbManhattan::new(&cost).distance(&x, &y);
            let im = LbIm::new(&cost).distance(&x, &y);
            total += 1;
            if im >= man - 1e-12 {
                wins += 1;
            }
        }
        assert_eq!(wins, total, "LB_IM should dominate LB_Man on this data");
    }

    #[test]
    fn identical_histograms_zero() {
        let (x, _, cost) = paper_example();
        assert_eq!(LbIm::new(&cost).distance(&x, &x), 0.0);
    }

    #[test]
    fn exact_on_two_bins() {
        // With n = 2 and refinement, all remaining mass must cross between
        // the two bins: LB_IM equals the EMD exactly.
        let cost = CostMatrix::from_fn(2, |i, j| if i == j { 0.0 } else { 0.7 });
        let x = Histogram::new(vec![0.9, 0.1]).unwrap();
        let y = Histogram::new(vec![0.4, 0.6]).unwrap();
        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
        let im = LbIm::new(&cost).distance(&x, &y);
        assert!((exact - im).abs() < 1e-12);
    }

    #[test]
    fn options_accessors() {
        let cost = CostMatrix::from_fn(2, |i, j| if i == j { 0.0 } else { 1.0 });
        let lb = LbIm::with_options(&cost, false, true);
        assert!(!lb.refines_diagonal());
        assert!(lb.is_symmetric());
        assert_eq!(lb.name(), "LB_IM");
    }
}
