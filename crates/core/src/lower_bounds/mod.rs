//! The paper's lower-bound filter distances, plus the exact EMD refiner.
//!
//! Every type here implements [`DistanceMeasure`]; all except
//! [`ExactEmd`] are *lower bounds* of the EMD for equal-mass histograms
//! and a metric ground distance, which is exactly the completeness
//! condition of multistep retrieval (§3.3 of the paper): a filter that
//! never exceeds the true distance can never discard a true result.
//!
//! | Type | Paper | Geometry | Cost per pair |
//! |---|---|---|---|
//! | [`LbAvg`] | §4.1 (Rubner et al.) | point distance in feature space | `O(n·d)` fold + `O(d)` compare |
//! | [`LbManhattan`] | §4.3 | hyperdiamond | `O(n)` |
//! | [`LbMax`] | §4.4 | hyperrectangle | `O(n)` |
//! | [`LbEuclidean`] | §4.5 | hyperellipsoid | `O(n)` |
//! | [`LbIm`] | §4.6 | per-row relaxed LP | `O(n²)` worst case |
//! | [`ExactEmd`] | §2 | transportation LP | super-quadratic (simplex) |

mod avg;
mod exact;
mod im;
mod kernel;
mod lp_norms;

pub use avg::LbAvg;
pub use exact::{ExactEmd, RUNG_BLAND, RUNG_DENSE_LP};
pub use im::LbIm;
pub use kernel::DistanceKernel;
pub use lp_norms::{min_off_diagonal_costs, LbEuclidean, LbManhattan, LbMax};

use crate::histogram::Histogram;

/// A distance (or distance lower bound) between equal-arity, equal-mass
/// histograms.
///
/// Implementations must be cheap to share across threads — the parallel
/// scan executor fans a single measure out over worker threads.
pub trait DistanceMeasure: Send + Sync {
    /// Distance between `x` and `y`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on arity mismatch; equal mass is a
    /// documented precondition checked by debug assertions.
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64;

    /// Fallible variant of [`DistanceMeasure::distance`].
    ///
    /// The lower bounds are pure arithmetic and cannot fail at run time,
    /// so the default just wraps [`DistanceMeasure::distance`]. Measures
    /// backed by an iterative solver — notably [`ExactEmd`] — override
    /// this to surface solver failures as typed errors instead of
    /// panicking; the multistep algorithms call it for every exact
    /// refinement.
    fn try_distance(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<f64, crate::error::PipelineError> {
        Ok(self.distance(x, y))
    }

    /// Like [`DistanceMeasure::try_distance`], but also reports how the
    /// value was obtained: `None` for the normal path, or a degradation
    /// note when the measure had to fall back internally (e.g.
    /// [`ExactEmd`] leaving its default simplex rung for Bland's rule or
    /// the dense LP). The multistep algorithms surface the note in
    /// [`crate::stats::QueryStats::degradations`] so solver fallbacks are
    /// visible per query, not just solver-internal.
    fn try_distance_noted(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<(f64, Option<&'static str>), crate::error::PipelineError> {
        self.try_distance(x, y).map(|d| (d, None))
    }

    /// Short stable name used in statistics and experiment output
    /// (e.g. `"LB_IM"`).
    fn name(&self) -> &'static str;

    /// A signature of the measure's *parameters* (weights, centroids,
    /// cost entries) for the filter-distance cache: two measures with
    /// the same [`DistanceMeasure::name`] and the same signature must
    /// compute bit-identical distances for every input.
    ///
    /// `None` (the default) opts the measure out of caching — correct
    /// for measures whose parameters cannot be summarized (or that are
    /// too cheap to be worth memoizing). The concrete lower bounds
    /// override this; [`ExactEmd`] deliberately does not (refinements
    /// are per-candidate, not whole-column).
    fn cache_signature(&self) -> Option<u64> {
        None
    }

    /// Compiles the measure against one fixed query, hoisting all
    /// query-only work (weight vectors, centroids, greedy state) out of
    /// the candidate loop. The returned kernel evaluates candidates —
    /// singly or over whole columnar blocks — bit-identically to
    /// [`DistanceMeasure::distance`] with the same query.
    ///
    /// The default wraps the measure in a per-pair kernel that clones `q`
    /// and calls back into [`DistanceMeasure::distance`]; measures with
    /// per-query state to hoist override this.
    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        Box::new(kernel::PairKernel {
            measure: self,
            q: q.clone(),
        })
    }
}

impl<T: DistanceMeasure + ?Sized> DistanceMeasure for &T {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        (**self).distance(x, y)
    }
    fn try_distance(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<f64, crate::error::PipelineError> {
        (**self).try_distance(x, y)
    }
    fn try_distance_noted(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<(f64, Option<&'static str>), crate::error::PipelineError> {
        (**self).try_distance_noted(x, y)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn cache_signature(&self) -> Option<u64> {
        (**self).cache_signature()
    }
    fn prepare<'m>(&'m self, q: &Histogram) -> Box<dyn DistanceKernel + 'm> {
        (**self).prepare(q)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for lower-bound tests.

    use crate::ground::BinGrid;
    use crate::histogram::Histogram;
    use earthmover_transport::CostMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The 1-D line metric cost matrix used by the paper's §4.6 example.
    pub fn line_cost(n: usize) -> CostMatrix {
        CostMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs())
    }

    /// A balanced variant of the paper's §4.6 running example.
    ///
    /// The example printed in the paper (`x = [4,3,5,4,5]`,
    /// `y = [1,2,3,8,8]`) has total masses 21 vs 22 — outside the EMD's
    /// equal-mass precondition — and its stated reduction
    /// `x¹ = [3,2,2,0,0]` contains an arithmetic slip (3 − min(3,2) = 1).
    /// We keep the same structure but lower `y_5` to 7 so the masses
    /// balance; the expected bound values are recomputed by hand in
    /// `im::tests::paper_worked_example`.
    pub fn paper_example() -> (Histogram, Histogram, CostMatrix) {
        let x = Histogram::new(vec![4.0, 3.0, 5.0, 4.0, 5.0]).unwrap();
        let y = Histogram::new(vec![1.0, 2.0, 3.0, 8.0, 7.0]).unwrap();
        (x, y, line_cost(5))
    }

    /// Random normalized histogram with some zero bins.
    pub fn random_histogram(rng: &mut StdRng, n: usize) -> Histogram {
        let mut bins: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        for b in bins.iter_mut() {
            if rng.gen_bool(0.35) {
                *b = 0.0;
            }
        }
        if bins.iter().sum::<f64>() == 0.0 {
            bins[0] = 1.0;
        }
        Histogram::normalized(bins).unwrap()
    }

    /// Random histogram pair plus a Euclidean grid ground distance.
    pub fn random_pair(seed: u64, axes: Vec<usize>) -> (Histogram, Histogram, CostMatrix) {
        let grid = BinGrid::new(axes);
        let n = grid.num_bins();
        let mut rng = StdRng::seed_from_u64(seed);
        (
            random_histogram(&mut rng, n),
            random_histogram(&mut rng, n),
            grid.cost_matrix(),
        )
    }
}
