//! The exact Earth Mover's Distance as a [`DistanceMeasure`], with a
//! solver recovery ladder.

use super::DistanceMeasure;
use crate::error::PipelineError;
use crate::histogram::Histogram;
use earthmover_lp::{Problem, Relation};
use earthmover_obs as obs;
use earthmover_transport::{
    emd_with_options, CostMatrix, PivotRule, SolverOptions, TransportError,
};

/// Degradation note for ladder rung 1 (Bland's anti-cycling rule).
pub const RUNG_BLAND: &str =
    "exact EMD: transportation simplex hit its pivot cap; recovered via Bland's rule";

/// Degradation note for ladder rung 2 (independent dense two-phase LP).
pub const RUNG_DENSE_LP: &str =
    "exact EMD: transportation simplex exhausted; recovered via dense LP";

/// Exact EMD refinement step, backed by the transportation simplex.
///
/// This is the `dist_exact` of the multistep architecture: every
/// candidate that survives the filters is evaluated with this measure.
/// Construction validates nothing about metricity — pair it with a
/// metric cost matrix (e.g. [`crate::ground::BinGrid::cost_matrix`]) if
/// the lower bounds or the metric axioms matter.
///
/// # Recovery ladder
///
/// The transportation simplex caps its pivot count to bound run time on
/// pathological (cycling-prone) degenerate instances. When that cap is
/// hit, [`ExactEmd::try_distance`] climbs a recovery ladder instead of
/// giving up:
///
/// 1. default pivot rule (largest cost reduction) — fast, almost always
///    terminates well under the cap;
/// 2. on [`TransportError::IterationLimit`]: retry with **Bland's
///    anti-cycling rule**, which provably cannot cycle;
/// 3. if even that exhausts its cap: solve the transportation LP with the
///    independent dense two-phase simplex of `earthmover-lp`.
///
/// Precondition failures (shape mismatch, unbalanced mass, negative
/// entries) are *not* retried — they are caller bugs and surface
/// immediately as [`PipelineError::Distance`].
#[derive(Debug, Clone)]
pub struct ExactEmd {
    cost: CostMatrix,
}

impl ExactEmd {
    /// Wraps a ground-distance cost matrix.
    pub fn new(cost: CostMatrix) -> Self {
        ExactEmd { cost }
    }

    /// The underlying cost matrix.
    pub fn cost(&self) -> &CostMatrix {
        &self.cost
    }

    /// Computes the EMD through the recovery ladder (see the type docs),
    /// returning a typed error instead of panicking.
    pub fn try_distance(&self, x: &Histogram, y: &Histogram) -> Result<f64, PipelineError> {
        self.try_distance_traced(x, y).map(|(d, _)| d)
    }

    /// [`ExactEmd::try_distance`] plus the recovery-ladder rung that
    /// produced the value: `None` for the default pivot rule, or a note
    /// naming the fallback (Bland's rule / dense LP). Emits an
    /// `exact_emd` span with the rung as an attribute (0 = default,
    /// 1 = Bland, 2 = dense LP).
    pub fn try_distance_traced(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<(f64, Option<&'static str>), PipelineError> {
        debug_assert!(
            x.mass_matches(y, 1e-7),
            "EMD requires equal-mass histograms: {} vs {}",
            x.mass(),
            y.mass()
        );
        let mut span = obs::span!("exact_emd", bins = x.len());
        let default = SolverOptions::default();
        match emd_with_options(x.bins(), y.bins(), &self.cost, default) {
            Ok(v) => {
                span.record("rung", 0.0);
                Ok((v, None))
            }
            Err(TransportError::IterationLimit) => {
                let bland = SolverOptions {
                    pivot_rule: PivotRule::Bland,
                    max_pivots: None,
                };
                match emd_with_options(x.bins(), y.bins(), &self.cost, bland) {
                    Ok(v) => {
                        span.record("rung", 1.0);
                        Ok((v, Some(RUNG_BLAND)))
                    }
                    Err(TransportError::IterationLimit) => {
                        span.record("rung", 2.0);
                        self.lp_distance(x, y).map(|v| (v, Some(RUNG_DENSE_LP)))
                    }
                    Err(e) => Err(PipelineError::Distance(e)),
                }
            }
            Err(e) => Err(PipelineError::Distance(e)),
        }
    }

    /// Final ladder rung: the transportation LP solved by the dense
    /// two-phase simplex of `earthmover-lp` — an entirely independent
    /// implementation, so a network-simplex bug cannot take it down too.
    fn lp_distance(&self, x: &Histogram, y: &Histogram) -> Result<f64, PipelineError> {
        let n = x.len();
        let mut objective = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                objective[i * n + j] = self.cost.get(i, j);
            }
        }
        let mut problem = Problem::minimize(objective);
        for i in 0..n {
            let mut row = vec![0.0; n * n];
            for j in 0..n {
                row[i * n + j] = 1.0;
            }
            problem.constrain(row, Relation::Eq, x.bins()[i]);
        }
        for j in 0..n {
            let mut col = vec![0.0; n * n];
            for i in 0..n {
                col[i * n + j] = 1.0;
            }
            problem.constrain(col, Relation::Eq, y.bins()[j]);
        }
        let mass = x.mass();
        if mass <= 0.0 {
            return Ok(0.0);
        }
        match problem.solve() {
            Ok(solution) => Ok(solution.objective / mass),
            // The ladder is exhausted; report the error that started it.
            Err(_) => Err(PipelineError::Distance(TransportError::IterationLimit)),
        }
    }
}

impl DistanceMeasure for ExactEmd {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        // Intentional panic: the infallible trait method is kept for
        // filter-style callers that have validated their inputs. Query
        // pipelines go through `try_distance` and never reach this.
        self.try_distance(x, y).unwrap_or_else(|e| {
            // xlint:allow(panic_freedom): documented contract of the infallible trait method; pipelines use try_distance
            panic!(
                "exact EMD precondition violated (histograms must share arity \
                 and total mass; normalize queries before use): {e}"
            )
        })
    }

    fn try_distance(&self, x: &Histogram, y: &Histogram) -> Result<f64, PipelineError> {
        ExactEmd::try_distance(self, x, y)
    }

    fn try_distance_noted(
        &self,
        x: &Histogram,
        y: &Histogram,
    ) -> Result<(f64, Option<&'static str>), PipelineError> {
        self.try_distance_traced(x, y)
    }

    fn name(&self) -> &'static str {
        "EMD"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::line_cost;
    use super::*;

    #[test]
    fn matches_transport_crate() {
        let m = ExactEmd::new(line_cost(4));
        let x = Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((m.distance(&x, &y) - 3.0).abs() < 1e-12);
        assert_eq!(m.name(), "EMD");
    }

    #[test]
    fn zero_for_identical() {
        let m = ExactEmd::new(line_cost(3));
        let x = Histogram::normalized(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.distance(&x, &x), 0.0);
    }

    #[test]
    fn try_distance_agrees_with_distance() {
        let m = ExactEmd::new(line_cost(5));
        let x = Histogram::normalized(vec![1.0, 2.0, 0.0, 1.0, 1.0]).unwrap();
        let y = Histogram::normalized(vec![0.0, 1.0, 3.0, 0.0, 1.0]).unwrap();
        assert_eq!(m.try_distance(&x, &y).unwrap(), m.distance(&x, &y));
    }

    #[test]
    fn healthy_path_reports_no_rung_note() {
        let m = ExactEmd::new(line_cost(4));
        let x = Histogram::normalized(vec![1.0, 2.0, 1.0, 0.5]).unwrap();
        let y = Histogram::normalized(vec![0.5, 1.0, 2.0, 1.0]).unwrap();
        let (d, note) = m.try_distance_traced(&x, &y).unwrap();
        assert!((d - m.distance(&x, &y)).abs() < 1e-12);
        assert_eq!(note, None, "default rung must not report a degradation");
    }

    #[test]
    fn lp_fallback_matches_simplex() {
        // Drive the final rung directly and compare with the simplex.
        let m = ExactEmd::new(line_cost(6));
        let x = Histogram::normalized(vec![3.0, 0.0, 2.0, 1.0, 0.0, 4.0]).unwrap();
        let y = Histogram::normalized(vec![0.0, 2.5, 0.5, 3.0, 4.0, 0.0]).unwrap();
        let via_lp = m.lp_distance(&x, &y).unwrap();
        let via_simplex = m.try_distance(&x, &y).unwrap();
        assert!(
            (via_lp - via_simplex).abs() < 1e-7,
            "lp {via_lp} vs simplex {via_simplex}"
        );
    }
}
