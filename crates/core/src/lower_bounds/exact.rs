//! The exact Earth Mover's Distance as a [`DistanceMeasure`].

use super::DistanceMeasure;
use crate::histogram::Histogram;
use earthmover_transport::{emd, CostMatrix};

/// Exact EMD refinement step, backed by the transportation simplex.
///
/// This is the `dist_exact` of the multistep architecture: every
/// candidate that survives the filters is evaluated with this measure.
/// Construction validates nothing about metricity — pair it with a
/// metric cost matrix (e.g. [`crate::ground::BinGrid::cost_matrix`]) if
/// the lower bounds or the metric axioms matter.
#[derive(Debug, Clone)]
pub struct ExactEmd {
    cost: CostMatrix,
}

impl ExactEmd {
    /// Wraps a ground-distance cost matrix.
    pub fn new(cost: CostMatrix) -> Self {
        ExactEmd { cost }
    }

    /// The underlying cost matrix.
    pub fn cost(&self) -> &CostMatrix {
        &self.cost
    }
}

impl DistanceMeasure for ExactEmd {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert!(
            x.mass_matches(y, 1e-7),
            "EMD requires equal-mass histograms: {} vs {}",
            x.mass(),
            y.mass()
        );
        emd(x.bins(), y.bins(), &self.cost).unwrap_or_else(|e| {
            panic!(
                "exact EMD precondition violated (histograms must share arity \
                 and total mass; normalize queries before use): {e}"
            )
        })
    }

    fn name(&self) -> &'static str {
        "EMD"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::line_cost;
    use super::*;

    #[test]
    fn matches_transport_crate() {
        let m = ExactEmd::new(line_cost(4));
        let x = Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((m.distance(&x, &y) - 3.0).abs() < 1e-12);
        assert_eq!(m.name(), "EMD");
    }

    #[test]
    fn zero_for_identical() {
        let m = ExactEmd::new(line_cost(3));
        let x = Histogram::normalized(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.distance(&x, &x), 0.0);
    }
}
