//! Typed errors for multistep query processing.
//!
//! The query pipeline degrades instead of panicking (see DESIGN.md,
//! "Failure model and recovery"): a failing candidate source is reported
//! as [`PipelineError::Source`] so the engine can fall back to a
//! sequential scan, and an exact-EMD evaluation that exhausts the solver
//! recovery ladder surfaces as [`PipelineError::Distance`].

use earthmover_transport::TransportError;
use std::fmt;

/// An error produced while executing a multistep query.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The first-stage candidate source failed — e.g. a corrupt or
    /// missing index. [`crate::pipeline::QueryEngine`] reacts to this by
    /// re-running the query on a sequential-scan source.
    Source {
        /// Name of the failing stage (its filter name).
        stage: String,
        /// Human-readable failure description.
        reason: String,
    },
    /// The exact EMD could not be computed even after the full solver
    /// recovery ladder (default pivot rule → Bland's rule → dense LP).
    /// Carries the transport-solver error that started the ladder.
    Distance(TransportError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Source { stage, reason } => {
                write!(f, "candidate source '{stage}' failed: {reason}")
            }
            PipelineError::Distance(e) => {
                write!(f, "exact EMD failed after solver recovery ladder: {e}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Source { .. } => None,
            PipelineError::Distance(e) => Some(e),
        }
    }
}

impl From<TransportError> for PipelineError {
    fn from(e: TransportError) -> Self {
        PipelineError::Distance(e)
    }
}
