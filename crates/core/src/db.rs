//! The histogram database: the collection multistep queries run against.
//!
//! Storage is columnar: all bin masses live in one contiguous arena
//! `Vec<f64>` with stride `dims`, so a full-database filter scan walks a
//! single cache-friendly allocation instead of chasing one heap vector
//! per object. Rows are handed out as cheap
//! [`HistogramRef`](crate::histogram::HistogramRef) borrowed views;
//! block-oriented distance kernels (see
//! [`crate::lower_bounds::DistanceKernel`]) consume the raw arena
//! directly via [`HistogramDb::arena`].

use crate::histogram::{Histogram, HistogramError, HistogramRef};

/// An in-memory collection of equal-arity, mass-normalized histograms.
///
/// Object ids are positions (`0..len`). Every histogram is normalized to
/// total mass 1 on ingest, which is both the paper's setting (equal-mass
/// histograms, §2) and what makes a single filter weight vector valid for
/// the whole database. Internally the bins are stored row-major in one
/// contiguous arena with stride [`HistogramDb::dims`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDb {
    dims: usize,
    /// Row-major arena: histogram `id` occupies
    /// `data[id * dims .. (id + 1) * dims]`.
    data: Vec<f64>,
}

impl HistogramDb {
    /// Creates an empty database for histograms of `dims` bins.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "histogram dimensionality must be positive");
        HistogramDb {
            dims,
            data: Vec::new(),
        }
    }

    /// Number of bins per histogram (the arena stride).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True when no histograms are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a histogram (normalizing it to mass 1) and returns its id.
    ///
    /// Fails with [`HistogramError::ArityMismatch`] when the histogram's
    /// arity differs from the database's, and with
    /// [`HistogramError::ZeroMass`] for an all-zero histogram, which
    /// cannot be normalized.
    pub fn try_push(&mut self, h: Histogram) -> Result<usize, HistogramError> {
        if h.len() != self.dims {
            return Err(HistogramError::ArityMismatch {
                expected: self.dims,
                got: h.len(),
            });
        }
        let h = h.into_normalized()?;
        self.data.extend_from_slice(h.bins());
        Ok(self.len() - 1)
    }

    /// [`HistogramDb::try_push`] that panics on arity mismatch or an
    /// all-zero histogram — convenient for generated workloads that
    /// guarantee well-formed input.
    pub fn push(&mut self, h: Histogram) -> usize {
        self.try_push(h)
            // xlint:allow(panic_freedom): documented panicking convenience; fallible callers use try_push
            .expect("histogram must match the database arity and have positive mass")
    }

    /// Adopts a whole row-major arena of already-normalized rows. Used by
    /// [`crate::storage`] after per-row validation; avoids one
    /// `Histogram` allocation per record on the load path.
    pub(crate) fn from_normalized_arena_unchecked(dims: usize, data: Vec<f64>) -> Self {
        assert!(dims > 0, "histogram dimensionality must be positive");
        debug_assert_eq!(
            data.len() % dims,
            0,
            "arena length must be a multiple of dims"
        );
        HistogramDb { dims, data }
    }

    /// A borrowed view of the histogram with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id >= self.len()`.
    pub fn get(&self, id: usize) -> HistogramRef<'_> {
        let start = id * self.dims;
        HistogramRef::new(&self.data[start..start + self.dims])
    }

    /// Iterates `(id, row view)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, HistogramRef<'_>)> {
        self.data
            .chunks_exact(self.dims)
            .map(HistogramRef::new)
            .enumerate()
    }

    /// The raw columnar arena: all bins row-major with stride
    /// [`HistogramDb::dims`]. This is the input
    /// [`crate::lower_bounds::DistanceKernel::eval_block`] consumes.
    pub fn arena(&self) -> &[f64] {
        &self.data
    }

    /// Per-bin variance across the database — the signal used to pick the
    /// three most discriminative dimensions for the reduced Manhattan
    /// index filter (§4.7).
    pub fn bin_variances(&self) -> Vec<f64> {
        let n = self.len();
        if n == 0 {
            return vec![0.0; self.dims];
        }
        let mut mean = vec![0.0; self.dims];
        for row in self.data.chunks_exact(self.dims) {
            for (m, b) in mean.iter_mut().zip(row) {
                *m += b;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; self.dims];
        for row in self.data.chunks_exact(self.dims) {
            for ((v, m), b) in var.iter_mut().zip(&mean).zip(row) {
                let d = b - m;
                *v += d * d;
            }
        }
        for v in &mut var {
            *v /= n as f64;
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_normalizes() {
        let mut db = HistogramDb::new(2);
        let id = db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(id, 0);
        let h = db.get(0).to_histogram();
        assert!((h.mass() - 1.0).abs() < 1e-12);
        assert!((h.get(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_rejected() {
        let mut db = HistogramDb::new(2);
        assert_eq!(
            db.try_push(Histogram::new(vec![0.0, 0.0]).unwrap()),
            Err(HistogramError::ZeroMass)
        );
        assert!(db.is_empty());
    }

    #[test]
    fn arity_mismatch_is_typed() {
        let mut db = HistogramDb::new(3);
        assert_eq!(
            db.try_push(Histogram::new(vec![1.0]).unwrap()),
            Err(HistogramError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        assert!(db.is_empty());
    }

    #[test]
    fn arena_is_row_major() {
        let mut db = HistogramDb::new(2);
        db.push(Histogram::new(vec![1.0, 3.0]).unwrap());
        db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(db.arena(), &[0.25, 0.75, 0.5, 0.5]);
        assert_eq!(db.get(1).bins(), &[0.5, 0.5]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn variances_identify_spread_dimensions() {
        let mut db = HistogramDb::new(3);
        // Bin 0 varies wildly, bin 2 is constant.
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        let v = db.bin_variances();
        assert!(v[0] > v[2]);
        assert!(v[1] > v[2]);
    }

    #[test]
    fn variance_of_empty_db_is_zero() {
        let db = HistogramDb::new(4);
        assert_eq!(db.bin_variances(), vec![0.0; 4]);
    }

    #[test]
    fn iteration_order_is_id_order() {
        let mut db = HistogramDb::new(1);
        db.push(Histogram::new(vec![1.0]).unwrap());
        db.push(Histogram::new(vec![2.0]).unwrap());
        let ids: Vec<usize> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
