//! The histogram database: the collection multistep queries run against.
//!
//! Storage is columnar and block-granular. The default backing is the
//! classic fully-resident arena — one contiguous `Vec<f64>` with stride
//! `dims` exposed as a single block — but a database can also be
//! *paged*: rows live in an on-disk column file behind a fixed-capacity
//! buffer pool (see [`crate::provider`] and [`crate::storage`]'s
//! `open_paged`), and scans stream pinned block leases instead of
//! borrowing one big slice. Rows are handed out as cheap
//! [`HistogramRef`](crate::histogram::HistogramRef) borrowed views on
//! the resident path and as pinning [`RowLease`]s on the fallible path;
//! block-oriented distance kernels (see
//! [`crate::lower_bounds::DistanceKernel`]) consume whole blocks via
//! [`HistogramDb::block`].

use crate::cache::FilterCache;
use crate::error::PipelineError;
use crate::histogram::{Histogram, HistogramError, HistogramRef};
use crate::provider::{BlockData, BlockProvider, PagedBlocks, ResidentBlocks, RowLease};
use earthmover_storage::BlockPoolStats;

/// A collection of equal-arity, mass-normalized histograms.
///
/// Object ids are positions (`0..len`). Every histogram is normalized to
/// total mass 1 on ingest, which is both the paper's setting (equal-mass
/// histograms, §2) and what makes a single filter weight vector valid for
/// the whole database. Rows resolve through a [`BlockProvider`]: either
/// the fully-resident arena (the default) or a paged column store with a
/// bounded buffer pool for corpora larger than RAM.
#[derive(Debug, Clone)]
pub struct HistogramDb {
    dims: usize,
    backing: Backing,
    /// Memoized filter distance columns; invalidated on ingest.
    cache: FilterCache,
}

/// The two storage backings. An enum rather than a boxed trait object so
/// the resident fast paths stay monomorphic (and `Clone`/`PartialEq`
/// stay cheap to state).
#[derive(Debug, Clone)]
enum Backing {
    Resident(ResidentBlocks),
    Paged(PagedBlocks),
}

impl Backing {
    fn provider(&self) -> &dyn BlockProvider {
        match self {
            Backing::Resident(r) => r,
            Backing::Paged(p) => p,
        }
    }
}

/// Resident databases compare by contents; paged databases compare by
/// identity (same pool), since comparing would mean reading both files
/// end to end. A resident and a paged database never compare equal.
impl PartialEq for HistogramDb {
    fn eq(&self, other: &Self) -> bool {
        match (&self.backing, &other.backing) {
            (Backing::Resident(a), Backing::Resident(b)) => self.dims == other.dims && a == b,
            (Backing::Paged(a), Backing::Paged(b)) => a.same_pool(b),
            _ => false,
        }
    }
}

impl HistogramDb {
    /// Creates an empty (resident) database for histograms of `dims` bins.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "histogram dimensionality must be positive");
        HistogramDb {
            dims,
            backing: Backing::Resident(ResidentBlocks::new(dims)),
            cache: FilterCache::new(),
        }
    }

    /// Number of bins per histogram (the row stride).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.backing.provider().len()
    }

    /// True when no histograms are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when rows live in a paged column store rather than a
    /// resident arena.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged(_))
    }

    /// Appends a histogram (normalizing it to mass 1) and returns its id.
    ///
    /// Fails with [`HistogramError::ArityMismatch`] when the histogram's
    /// arity differs from the database's, with
    /// [`HistogramError::ZeroMass`] for an all-zero histogram, which
    /// cannot be normalized, and with [`HistogramError::ReadOnly`] for a
    /// paged database (the column file is immutable once written).
    /// Ingest invalidates the filter-distance cache.
    pub fn try_push(&mut self, h: Histogram) -> Result<usize, HistogramError> {
        if h.len() != self.dims {
            return Err(HistogramError::ArityMismatch {
                expected: self.dims,
                got: h.len(),
            });
        }
        let h = h.into_normalized()?;
        match &mut self.backing {
            Backing::Resident(r) => r.extend(h.bins()),
            Backing::Paged(_) => return Err(HistogramError::ReadOnly),
        }
        self.cache.invalidate();
        Ok(self.len() - 1)
    }

    /// [`HistogramDb::try_push`] that panics on arity mismatch, an
    /// all-zero histogram, or a paged database — convenient for generated
    /// workloads that guarantee well-formed resident input.
    pub fn push(&mut self, h: Histogram) -> usize {
        self.try_push(h)
            // xlint:allow(panic_freedom): documented panicking convenience; fallible callers use try_push
            .expect("histogram must match the database arity and have positive mass")
    }

    /// Adopts a whole row-major arena of already-normalized rows. Used by
    /// [`crate::storage`] after per-row validation; avoids one
    /// `Histogram` allocation per record on the load path.
    pub(crate) fn from_normalized_arena_unchecked(dims: usize, data: Vec<f64>) -> Self {
        assert!(dims > 0, "histogram dimensionality must be positive");
        debug_assert_eq!(
            data.len() % dims,
            0,
            "arena length must be a multiple of dims"
        );
        HistogramDb {
            dims,
            backing: Backing::Resident(ResidentBlocks::from_arena(dims, data)),
            cache: FilterCache::new(),
        }
    }

    /// Wraps a paged provider (see [`crate::storage::open_paged`]).
    pub(crate) fn from_paged(paged: PagedBlocks) -> Self {
        assert!(
            paged.dims() > 0,
            "histogram dimensionality must be positive"
        );
        HistogramDb {
            dims: paged.dims(),
            backing: Backing::Paged(paged),
            cache: FilterCache::new(),
        }
    }

    /// A borrowed view of the histogram with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id >= self.len()`, and on a paged database (whose
    /// row reads can fail) — fallible callers use
    /// [`HistogramDb::try_row`].
    pub fn get(&self, id: usize) -> HistogramRef<'_> {
        match &self.backing {
            Backing::Resident(r) => {
                let start = id * self.dims;
                HistogramRef::new(&r.arena()[start..start + self.dims])
            }
            Backing::Paged(_) => {
                // xlint:allow(panic_freedom): documented panicking convenience; paged callers use try_row
                panic!("HistogramDb::get on a paged database; use try_row")
            }
        }
    }

    /// A row view that keeps its backing block pinned, with typed errors
    /// for out-of-range ids and failed block reads (paged databases).
    pub fn try_row(&self, id: usize) -> Result<RowLease<'_>, PipelineError> {
        if id >= self.len() {
            return Err(PipelineError::Source {
                stage: "paged_store".into(),
                reason: format!("row {id} out of bounds (len {})", self.len()),
            });
        }
        match &self.backing {
            Backing::Resident(r) => {
                let start = id * self.dims;
                r.arena()
                    .get(start..start + self.dims)
                    .map(RowLease::Resident)
                    .ok_or_else(|| PipelineError::Source {
                        stage: "paged_store".into(),
                        reason: format!("row {id} outside the resident arena"),
                    })
            }
            Backing::Paged(p) => {
                let rpb = p.rows_per_block().max(1);
                let block = p.block(id / rpb).map_err(|e| PipelineError::Source {
                    stage: "paged_store".into(),
                    reason: e.to_string(),
                })?;
                let lease = match block {
                    BlockData::Pooled(l) => l,
                    // Unreachable: a paged provider only hands out leases.
                    BlockData::Resident(s) => {
                        return Ok(RowLease::Resident(
                            s.get((id % rpb) * self.dims..(id % rpb + 1) * self.dims)
                                .unwrap_or(&[]),
                        ))
                    }
                };
                Ok(RowLease::Paged {
                    block: lease,
                    start: (id % rpb) * self.dims,
                    dims: self.dims,
                })
            }
        }
    }

    /// Iterates `(id, row view)` pairs in id order.
    ///
    /// # Panics
    ///
    /// Panics on a paged database — streaming callers walk
    /// [`HistogramDb::block`] ranges instead.
    pub fn iter(&self) -> impl Iterator<Item = (usize, HistogramRef<'_>)> {
        self.resident_arena()
            // xlint:allow(panic_freedom): documented panicking convenience; paged callers stream blocks
            .expect("HistogramDb::iter on a paged database; stream blocks instead")
            .chunks_exact(self.dims)
            .map(HistogramRef::new)
            .enumerate()
    }

    /// The raw columnar arena: all bins row-major with stride
    /// [`HistogramDb::dims`]. This is the input
    /// [`crate::lower_bounds::DistanceKernel::eval_block`] consumes.
    ///
    /// # Panics
    ///
    /// Panics on a paged database, whose rows are not resident as one
    /// slice — use [`HistogramDb::resident_arena`] or
    /// [`HistogramDb::block`].
    pub fn arena(&self) -> &[f64] {
        self.resident_arena()
            // xlint:allow(panic_freedom): documented panicking convenience; paged callers stream blocks
            .expect("HistogramDb::arena on a paged database; stream blocks instead")
    }

    /// The resident arena, or `None` for a paged database.
    pub fn resident_arena(&self) -> Option<&[f64]> {
        match &self.backing {
            Backing::Resident(r) => Some(r.arena()),
            Backing::Paged(_) => None,
        }
    }

    /// The rows of block `block` as one row-major slice (resident: the
    /// whole arena is block 0; paged: a pinned buffer-pool lease).
    pub fn block(&self, block: usize) -> Result<BlockData<'_>, PipelineError> {
        self.backing
            .provider()
            .block(block)
            .map_err(|e| PipelineError::Source {
                stage: "paged_store".into(),
                reason: e.to_string(),
            })
    }

    /// Number of blocks (resident databases have exactly one unless
    /// empty).
    pub fn num_blocks(&self) -> usize {
        self.backing.provider().num_blocks()
    }

    /// Rows in every block but the last.
    pub fn rows_per_block(&self) -> usize {
        self.backing.provider().rows_per_block()
    }

    /// Rows held by block `block`.
    pub fn rows_in_block(&self, block: usize) -> usize {
        self.backing.provider().rows_in_block(block)
    }

    /// Buffer-pool counters, or `None` for a resident database.
    pub fn pool_stats(&self) -> Option<BlockPoolStats> {
        match &self.backing {
            Backing::Resident(_) => None,
            Backing::Paged(p) => Some(p.pool_stats()),
        }
    }

    /// Blocks currently resident in the buffer pool (resident databases
    /// report their single block).
    pub fn resident_block_count(&self) -> usize {
        match &self.backing {
            Backing::Resident(_) => self.num_blocks(),
            Backing::Paged(p) => p.resident_blocks(),
        }
    }

    /// Buffer-pool frame capacity in blocks (resident: `num_blocks`).
    pub fn pool_capacity(&self) -> usize {
        match &self.backing {
            Backing::Resident(_) => self.num_blocks(),
            Backing::Paged(p) => p.pool_capacity(),
        }
    }

    /// The filter-distance cache fronting this database.
    pub fn filter_cache(&self) -> &FilterCache {
        &self.cache
    }

    /// Per-bin variance across the database — the signal used to pick the
    /// three most discriminative dimensions for the reduced Manhattan
    /// index filter (§4.7).
    ///
    /// Streams blocks; on a paged database an unreadable block is
    /// skipped (variance only *selects* index dimensions — any choice
    /// keeps the reduced filter admissible, so degrading the heuristic
    /// is safe where failing the build would not be).
    pub fn bin_variances(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.dims];
        let mut counted = 0usize;
        for b in 0..self.num_blocks() {
            if let Ok(data) = self.block(b) {
                for row in data.chunks_exact(self.dims) {
                    for (m, v) in mean.iter_mut().zip(row) {
                        *m += v;
                    }
                    counted += 1;
                }
            }
        }
        if counted == 0 {
            return vec![0.0; self.dims];
        }
        for m in &mut mean {
            *m /= counted as f64;
        }
        let mut var = vec![0.0; self.dims];
        for b in 0..self.num_blocks() {
            if let Ok(data) = self.block(b) {
                for row in data.chunks_exact(self.dims) {
                    for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
                        let d = x - m;
                        *v += d * d;
                    }
                }
            }
        }
        for v in &mut var {
            *v /= counted as f64;
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_normalizes() {
        let mut db = HistogramDb::new(2);
        let id = db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(id, 0);
        let h = db.get(0).to_histogram();
        assert!((h.mass() - 1.0).abs() < 1e-12);
        assert!((h.get(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_rejected() {
        let mut db = HistogramDb::new(2);
        assert_eq!(
            db.try_push(Histogram::new(vec![0.0, 0.0]).unwrap()),
            Err(HistogramError::ZeroMass)
        );
        assert!(db.is_empty());
    }

    #[test]
    fn arity_mismatch_is_typed() {
        let mut db = HistogramDb::new(3);
        assert_eq!(
            db.try_push(Histogram::new(vec![1.0]).unwrap()),
            Err(HistogramError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        assert!(db.is_empty());
    }

    #[test]
    fn arena_is_row_major() {
        let mut db = HistogramDb::new(2);
        db.push(Histogram::new(vec![1.0, 3.0]).unwrap());
        db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(db.arena(), &[0.25, 0.75, 0.5, 0.5]);
        assert_eq!(db.get(1).bins(), &[0.5, 0.5]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn resident_db_is_one_block() {
        let mut db = HistogramDb::new(2);
        assert_eq!(db.num_blocks(), 0);
        db.push(Histogram::new(vec![1.0, 3.0]).unwrap());
        db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(db.num_blocks(), 1);
        assert_eq!(db.rows_per_block(), 2);
        assert_eq!(&*db.block(0).unwrap(), db.arena());
        assert!(!db.is_paged());
        assert!(db.pool_stats().is_none());
    }

    #[test]
    fn try_row_matches_get_and_rejects_out_of_bounds() {
        let mut db = HistogramDb::new(2);
        db.push(Histogram::new(vec![1.0, 3.0]).unwrap());
        let row = db.try_row(0).unwrap();
        assert_eq!(row.bins(), db.get(0).bins());
        assert!(matches!(db.try_row(1), Err(PipelineError::Source { .. })));
    }

    #[test]
    fn ingest_invalidates_filter_cache() {
        use crate::cache::CacheKey;
        use std::sync::Arc;
        let mut db = HistogramDb::new(2);
        db.push(Histogram::new(vec![1.0, 3.0]).unwrap());
        let key = CacheKey {
            filter: "LB_Test",
            params: 1,
            query: 2,
            rows: db.len(),
        };
        db.filter_cache().insert(key.clone(), Arc::new(vec![0.5]));
        assert!(db.filter_cache().get(&key).is_some());
        db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert!(db.filter_cache().get(&key).is_none());
    }

    #[test]
    fn variances_identify_spread_dimensions() {
        let mut db = HistogramDb::new(3);
        // Bin 0 varies wildly, bin 2 is constant.
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        let v = db.bin_variances();
        assert!(v[0] > v[2]);
        assert!(v[1] > v[2]);
    }

    #[test]
    fn variance_of_empty_db_is_zero() {
        let db = HistogramDb::new(4);
        assert_eq!(db.bin_variances(), vec![0.0; 4]);
    }

    #[test]
    fn iteration_order_is_id_order() {
        let mut db = HistogramDb::new(1);
        db.push(Histogram::new(vec![1.0]).unwrap());
        db.push(Histogram::new(vec![2.0]).unwrap());
        let ids: Vec<usize> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
