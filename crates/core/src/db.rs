//! The histogram database: the collection multistep queries run against.

use crate::histogram::{Histogram, HistogramError};

/// An in-memory collection of equal-arity, mass-normalized histograms.
///
/// Object ids are positions (`0..len`). Every histogram is normalized to
/// total mass 1 on ingest, which is both the paper's setting (equal-mass
/// histograms, §2) and what makes a single filter weight vector valid for
/// the whole database.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDb {
    dims: usize,
    histograms: Vec<Histogram>,
}

impl HistogramDb {
    /// Creates an empty database for histograms of `dims` bins.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "histogram dimensionality must be positive");
        HistogramDb {
            dims,
            histograms: Vec::new(),
        }
    }

    /// Number of bins per histogram.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True when no histograms are stored.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Appends a histogram (normalizing it to mass 1) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch. Returns an error only for an all-zero
    /// histogram, which cannot be normalized.
    pub fn try_push(&mut self, h: Histogram) -> Result<usize, HistogramError> {
        assert_eq!(h.len(), self.dims, "histogram arity mismatch");
        let h = h.into_normalized()?;
        self.histograms.push(h);
        Ok(self.histograms.len() - 1)
    }

    /// [`HistogramDb::try_push`] that panics on an all-zero histogram —
    /// convenient for generated workloads that guarantee positive mass.
    pub fn push(&mut self, h: Histogram) -> usize {
        // xlint:allow(panic_freedom): documented panicking convenience; fallible callers use try_push
        self.try_push(h).expect("histogram must have positive mass")
    }

    /// Appends an already-normalized histogram verbatim, without
    /// re-normalizing. Used by [`crate::storage`] when reloading a
    /// database whose contents are canonical by construction —
    /// re-dividing by a recomputed mass of `1.0 ± ulp` would perturb the
    /// stored bins and break bit-exact round trips.
    pub(crate) fn push_normalized_unchecked(&mut self, h: Histogram) {
        debug_assert_eq!(h.len(), self.dims);
        debug_assert!((h.mass() - 1.0).abs() < 1e-6, "mass {} not ~1", h.mass());
        self.histograms.push(h);
    }

    /// The histogram with the given id.
    pub fn get(&self, id: usize) -> &Histogram {
        &self.histograms[id]
    }

    /// Iterates `(id, histogram)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Histogram)> {
        self.histograms.iter().enumerate()
    }

    /// All histograms in id order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.histograms
    }

    /// Per-bin variance across the database — the signal used to pick the
    /// three most discriminative dimensions for the reduced Manhattan
    /// index filter (§4.7).
    pub fn bin_variances(&self) -> Vec<f64> {
        let n = self.histograms.len();
        if n == 0 {
            return vec![0.0; self.dims];
        }
        let mut mean = vec![0.0; self.dims];
        for h in &self.histograms {
            for (m, b) in mean.iter_mut().zip(h.bins()) {
                *m += b;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; self.dims];
        for h in &self.histograms {
            for ((v, m), b) in var.iter_mut().zip(&mean).zip(h.bins()) {
                let d = b - m;
                *v += d * d;
            }
        }
        for v in &mut var {
            *v /= n as f64;
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_normalizes() {
        let mut db = HistogramDb::new(2);
        let id = db.push(Histogram::new(vec![2.0, 2.0]).unwrap());
        assert_eq!(id, 0);
        assert!((db.get(0).mass() - 1.0).abs() < 1e-12);
        assert!((db.get(0).get(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_rejected() {
        let mut db = HistogramDb::new(2);
        assert!(db
            .try_push(Histogram::new(vec![0.0, 0.0]).unwrap())
            .is_err());
        assert!(db.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut db = HistogramDb::new(3);
        db.push(Histogram::new(vec![1.0]).unwrap());
    }

    #[test]
    fn variances_identify_spread_dimensions() {
        let mut db = HistogramDb::new(3);
        // Bin 0 varies wildly, bin 2 is constant.
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![1.0, 0.0, 1.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 1.0, 1.0]).unwrap());
        let v = db.bin_variances();
        assert!(v[0] > v[2]);
        assert!(v[1] > v[2]);
    }

    #[test]
    fn variance_of_empty_db_is_zero() {
        let db = HistogramDb::new(4);
        assert_eq!(db.bin_variances(), vec![0.0; 4]);
    }

    #[test]
    fn iteration_order_is_id_order() {
        let mut db = HistogramDb::new(1);
        db.push(Histogram::new(vec![1.0]).unwrap());
        db.push(Histogram::new(vec![2.0]).unwrap());
        let ids: Vec<usize> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
