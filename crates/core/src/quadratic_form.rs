//! The quadratic form distance — the EMD's predecessor (§2 of the paper).
//!
//! `QF_A(x, y) = sqrt( (x − y)ᵀ A (x − y) )` with a similarity matrix
//! `A = [a_ij]` reflecting perceived bin similarity (Hafner et al. 1995,
//! IBM QBIC). The paper's §2 explains its weakness: cross-bin
//! differences are merely *smoothed* by `A`, so structural differences
//! remain indistinguishable from color shifts. It is implemented here as
//! a comparison measure for the retrieval-quality experiments — not as a
//! lower bound (it is **not** one).

use crate::histogram::Histogram;
use crate::lower_bounds::DistanceMeasure;
use earthmover_transport::CostMatrix;
use std::fmt;

/// The quadratic form distance over a similarity matrix `A`.
#[derive(Debug, Clone)]
pub struct QuadraticForm {
    n: usize,
    /// Row-major `n × n` similarity matrix.
    a: Vec<f64>,
}

/// Errors constructing a [`QuadraticForm`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuadraticFormError {
    /// Matrix buffer length is not `n * n`.
    WrongLength {
        /// Required buffer length (`n * n`).
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// An entry is non-finite.
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for QuadraticFormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuadraticFormError::WrongLength { expected, actual } => {
                write!(
                    f,
                    "similarity buffer has length {actual}, expected {expected}"
                )
            }
            QuadraticFormError::NonFinite { row, col } => {
                write!(f, "similarity ({row},{col}) is non-finite")
            }
        }
    }
}

impl std::error::Error for QuadraticFormError {}

impl QuadraticForm {
    /// Wraps a row-major similarity matrix.
    pub fn new(n: usize, a: Vec<f64>) -> Result<Self, QuadraticFormError> {
        if a.len() != n * n {
            return Err(QuadraticFormError::WrongLength {
                expected: n * n,
                actual: a.len(),
            });
        }
        if let Some(idx) = a.iter().position(|v| !v.is_finite()) {
            return Err(QuadraticFormError::NonFinite {
                row: idx / n,
                col: idx % n,
            });
        }
        Ok(QuadraticForm { n, a })
    }

    /// The classic similarity matrix derived from a ground-distance cost
    /// matrix: `a_ij = 1 − c_ij / max(c)` (Hafner et al.). Similar bins
    /// get weights near 1, distant bins near 0.
    pub fn from_cost(cost: &CostMatrix) -> Self {
        let n = cost.len();
        let max = cost.max_cost().max(f64::MIN_POSITIVE);
        let mut a = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                a.push(1.0 - cost.get(i, j) / max);
            }
        }
        QuadraticForm { n, a }
    }

    /// Histogram arity this form expects.
    pub fn dims(&self) -> usize {
        self.n
    }
}

impl DistanceMeasure for QuadraticForm {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        debug_assert_eq!(x.len(), self.n, "arity mismatch");
        debug_assert_eq!(y.len(), self.n, "arity mismatch");
        let diff: Vec<f64> = x.bins().iter().zip(y.bins()).map(|(a, b)| a - b).collect();
        let mut total = 0.0;
        for i in 0..self.n {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            let mut dot = 0.0;
            for (a_ij, d_j) in row.iter().zip(&diff) {
                dot += a_ij * d_j;
            }
            total += diff[i] * dot;
        }
        // A may be only positive semi-definite in user-supplied forms;
        // clamp tiny negative dust before the root.
        total.max(0.0).sqrt()
    }

    fn name(&self) -> &'static str {
        "QF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_qf(n: usize) -> QuadraticForm {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        QuadraticForm::new(n, a).unwrap()
    }

    #[test]
    fn identity_matrix_gives_euclidean() {
        let qf = identity_qf(3);
        let x = Histogram::new(vec![1.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 1.0, 0.0]).unwrap();
        assert!((qf.distance(&x, &y) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn self_distance_zero() {
        let cost = CostMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
        let qf = QuadraticForm::from_cost(&cost);
        let x = Histogram::new(vec![0.3, 0.2, 0.4, 0.1]).unwrap();
        assert_eq!(qf.distance(&x, &x), 0.0);
    }

    #[test]
    fn from_cost_similarity_range() {
        let cost = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
        let qf = QuadraticForm::from_cost(&cost);
        // Diagonal similarity is 1; the farthest pair has similarity 0.
        assert_eq!(qf.a[0], 1.0);
        assert_eq!(qf.a[2], 0.0);
    }

    #[test]
    fn smooths_adjacent_shifts() {
        // The §2 motivation: under QF with ground similarity, a one-bin
        // shift is *smaller* than under the identity (bin-by-bin) form.
        let cost = CostMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
        let qf = QuadraticForm::from_cost(&cost);
        let id = identity_qf(4);
        let x = Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        assert!(qf.distance(&x, &y) < id.distance(&x, &y));
    }

    #[test]
    fn symmetry() {
        let cost = CostMatrix::from_fn(5, |i, j| (i as f64 - j as f64).abs());
        let qf = QuadraticForm::from_cost(&cost);
        let x = Histogram::new(vec![0.5, 0.1, 0.1, 0.1, 0.2]).unwrap();
        let y = Histogram::new(vec![0.0, 0.3, 0.3, 0.2, 0.2]).unwrap();
        assert!((qf.distance(&x, &y) - qf.distance(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            QuadraticForm::new(2, vec![0.0; 3]),
            Err(QuadraticFormError::WrongLength { .. })
        ));
        assert!(matches!(
            QuadraticForm::new(1, vec![f64::NAN]),
            Err(QuadraticFormError::NonFinite { .. })
        ));
    }
}
