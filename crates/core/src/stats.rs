//! Work accounting for multistep queries.
//!
//! The paper's evaluation reports two quantities per experiment:
//! *selectivity* (the fraction of the database that reaches the exact EMD
//! refinement step) and *response time*. [`QueryStats`] captures both,
//! plus the hardware-independent operation counts (filter evaluations,
//! index node accesses) that make runs comparable across machines, and a
//! per-stage wall-clock breakdown (where inside the pipeline the time
//! went: candidate generation, each scan filter, exact refinement).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Canonical stage names used in [`QueryStats::stage_elapsed`].
///
/// Intermediate filter stages use the filter's own
/// [`crate::lower_bounds::DistanceMeasure::name`] (e.g. `"LB_IM"`); these
/// constants name the two stages every pipeline has.
pub mod stage {
    /// First stage: candidate generation (index traversal or filter scan).
    pub const CANDIDATES: &str = "candidates";
    /// Final stage: exact EMD refinement.
    pub const EXACT: &str = "exact";
}

/// Per-shard execution provenance attached to a scatter-gathered
/// answer: which endpoint answered for the shard, what resilience
/// machinery fired on the way, and the shard's own full [`QueryStats`]
/// (so per-stage timing survives the merge instead of being summed
/// into anonymity).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardProvenance {
    /// Shard group index in the cluster topology.
    pub shard: u32,
    /// Endpoint that produced the answer (`host:port`).
    pub endpoint: String,
    /// True when a replica (not the group primary) answered.
    pub from_replica: bool,
    /// Wire-level retry attempts spent on this answer.
    pub retries: u32,
    /// True when the hedged backup request was launched for this call.
    pub hedge_fired: bool,
    /// Coordinator-observed call latency (queueing + wire + shard work).
    pub latency: Duration,
    /// The shard's own stats for its partial answer. Its `provenance`
    /// is empty — attribution nests exactly one level.
    pub stats: QueryStats,
}

/// Counters and timing for one multistep query execution.
///
/// Serializable so experiment harnesses can export structured results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Number of database objects (the selectivity denominator).
    /// Merging keeps the **max**, not the sum — merged records describe
    /// workloads over the *same* database, so the database size is a
    /// property, not an accumulator.
    pub db_size: usize,
    /// Filter distance evaluations per pipeline stage, in stage order.
    /// The first entry is the candidate source (index or scan filter);
    /// later entries are intermediate scan filters.
    pub filter_evaluations: Vec<(String, u64)>,
    /// Index node accesses performed by the candidate source.
    pub node_accesses: u64,
    /// Exact EMD evaluations — the quantity the paper calls selectivity
    /// when divided by the database size.
    pub exact_evaluations: u64,
    /// Result set size.
    pub results: u64,
    /// Wall-clock execution time. Merging **sums**, so a merged record
    /// holds the total time across the workload.
    pub elapsed: Duration,
    /// Worst-case single-query wall-clock time. For a single execution
    /// this equals [`QueryStats::elapsed`]; merging keeps the **max**, so
    /// a merged record exposes the workload's slowest query alongside the
    /// summed total.
    pub elapsed_max: Duration,
    /// Wall-clock time per pipeline stage, in stage order: the candidate
    /// source ([`stage::CANDIDATES`]), each intermediate filter (by its
    /// filter name), and exact refinement ([`stage::EXACT`]). Stage times
    /// sum to slightly less than `elapsed` (loop bookkeeping is outside
    /// any stage). Merging sums per stage.
    pub stage_elapsed: Vec<(String, Duration)>,
    /// Degradation events recorded while answering the query — e.g. the
    /// index first stage failed and the engine fell back to a sequential
    /// scan, or the exact-EMD solver left its default rung (Bland /
    /// dense-LP recovery). Empty for a healthy execution; results remain
    /// exact either way.
    pub degradations: Vec<String>,
    /// True when the query's [`crate::deadline::Deadline`] expired before
    /// the pipeline finished: the result is a best-effort partial answer
    /// (every distance reported is still exact, but objects that were
    /// never reached may be missing). Merging ORs, so a workload record
    /// says whether *any* query was cut short.
    pub deadline_expired: bool,
    /// Per-shard attribution for scatter-gathered answers: one entry per
    /// shard group that answered, in shard order. Empty for single-node
    /// executions (and on the shards themselves). Merging concatenates
    /// and re-sorts by `(shard, endpoint)`, so the set is
    /// order-independent under merge.
    pub provenance: Vec<ShardProvenance>,
    /// Which retrieval tier answered and the recall it guarantees
    /// (see [`crate::sketch_tier::RetrievalInfo`]). `None` for queries
    /// issued through the mode-less API (always exact). Merging keeps
    /// `self`'s entry when present, otherwise adopts `other`'s — merged
    /// partials of one query all carry the same mode.
    pub retrieval: Option<crate::sketch_tier::RetrievalInfo>,
}

impl QueryStats {
    /// Fraction of the database that required an exact EMD computation —
    /// the paper's selectivity measure (Figures 7–10, left panels).
    pub fn selectivity(&self) -> f64 {
        if self.db_size == 0 {
            0.0
        } else {
            self.exact_evaluations as f64 / self.db_size as f64
        }
    }

    /// Adds a filter-evaluation count for a named stage, merging it into
    /// an existing entry with the same name if present.
    pub fn add_filter_evaluations(&mut self, stage: &str, count: u64) {
        if let Some(entry) = self.filter_evaluations.iter_mut().find(|(n, _)| n == stage) {
            entry.1 += count;
        } else {
            self.filter_evaluations.push((stage.to_string(), count));
        }
    }

    /// Total filter evaluations across all stages.
    pub fn total_filter_evaluations(&self) -> u64 {
        self.filter_evaluations.iter().map(|(_, c)| c).sum()
    }

    /// Adds wall-clock time to a named stage, merging into an existing
    /// entry with the same name if present.
    pub fn add_stage_elapsed(&mut self, stage: &str, elapsed: Duration) {
        if let Some(entry) = self.stage_elapsed.iter_mut().find(|(n, _)| n == stage) {
            entry.1 += elapsed;
        } else {
            self.stage_elapsed.push((stage.to_string(), elapsed));
        }
    }

    /// The recorded time of a named stage, if any.
    pub fn stage_time(&self, stage: &str) -> Option<Duration> {
        self.stage_elapsed
            .iter()
            .find(|(n, _)| n == stage)
            .map(|(_, d)| *d)
    }

    /// Finalizes single-query timing: sets `elapsed` and seeds
    /// `elapsed_max` with the same value so later [`QueryStats::merge`]
    /// calls track the worst case correctly.
    pub fn set_elapsed(&mut self, elapsed: Duration) {
        self.elapsed = elapsed;
        self.elapsed_max = elapsed;
    }

    /// Records a degradation note unless an identical note is already
    /// present — per-pair solver fallbacks would otherwise flood the list
    /// with duplicates on a single query.
    pub fn record_degradation_once(&mut self, note: &str) {
        if !self.degradations.iter().any(|d| d == note) {
            self.degradations.push(note.to_string());
        }
    }

    /// Merges another record (e.g. to aggregate across query workloads).
    ///
    /// Semantics per field: counters and `elapsed` (plus each
    /// `stage_elapsed` entry) are **summed**; `db_size` and `elapsed_max`
    /// keep the **max** (the database size is shared across the workload,
    /// and `elapsed_max` is the worst-case single query). Degradation
    /// notes are **deduplicated**: merging N shard partials that each
    /// fell back the same way yields one note, and no distinct note is
    /// ever lost — the note set is order-independent under merge.
    pub fn merge(&mut self, other: &QueryStats) {
        self.db_size = self.db_size.max(other.db_size);
        for (name, count) in &other.filter_evaluations {
            self.add_filter_evaluations(name, *count);
        }
        self.node_accesses += other.node_accesses;
        self.exact_evaluations += other.exact_evaluations;
        self.results += other.results;
        self.elapsed += other.elapsed;
        // A record that never went through `set_elapsed` (hand-built, or
        // deserialized from an older format) still contributes its total
        // elapsed as the worst-case estimate.
        let other_max = other.elapsed_max.max(if other.elapsed_max.is_zero() {
            other.elapsed
        } else {
            other.elapsed_max
        });
        self.elapsed_max = self.elapsed_max.max(other_max);
        for (name, d) in &other.stage_elapsed {
            self.add_stage_elapsed(name, *d);
        }
        for note in &other.degradations {
            self.record_degradation_once(note);
        }
        self.deadline_expired |= other.deadline_expired;
        if self.retrieval.is_none() {
            self.retrieval = other.retrieval;
        }
        if !other.provenance.is_empty() {
            self.provenance.extend(other.provenance.iter().cloned());
            self.provenance
                .sort_by(|a, b| (a.shard, &a.endpoint).cmp(&(b.shard, &b.endpoint)));
        }
    }

    /// The provenance entry with the largest coordinator-observed
    /// latency — the straggler that set the critical path of a
    /// scatter-gathered answer. `None` when no provenance is attached.
    pub fn straggler(&self) -> Option<&ShardProvenance> {
        self.provenance.iter().max_by_key(|p| p.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_exact_over_db_size() {
        let s = QueryStats {
            db_size: 200,
            exact_evaluations: 5,
            ..Default::default()
        };
        assert!((s.selectivity() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn selectivity_of_empty_db_is_zero() {
        assert_eq!(QueryStats::default().selectivity(), 0.0);
    }

    #[test]
    fn filter_evaluations_merge_by_stage() {
        let mut s = QueryStats::default();
        s.add_filter_evaluations("LB_Man", 10);
        s.add_filter_evaluations("LB_IM", 3);
        s.add_filter_evaluations("LB_Man", 5);
        assert_eq!(
            s.filter_evaluations,
            vec![("LB_Man".to_string(), 15), ("LB_IM".to_string(), 3)]
        );
        assert_eq!(s.total_filter_evaluations(), 18);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            db_size: 100,
            exact_evaluations: 2,
            node_accesses: 7,
            results: 10,
            ..Default::default()
        };
        a.add_filter_evaluations("f", 1);
        let mut b = QueryStats {
            db_size: 100,
            exact_evaluations: 3,
            node_accesses: 1,
            results: 10,
            ..Default::default()
        };
        b.add_filter_evaluations("f", 2);
        a.merge(&b);
        assert_eq!(a.exact_evaluations, 5);
        assert_eq!(a.node_accesses, 8);
        assert_eq!(a.filter_evaluations[0].1, 3);
    }

    #[test]
    fn merge_sums_elapsed_and_tracks_worst_case() {
        let mut a = QueryStats::default();
        a.set_elapsed(Duration::from_millis(10));
        let mut b = QueryStats::default();
        b.set_elapsed(Duration::from_millis(30));
        let mut c = QueryStats::default();
        c.set_elapsed(Duration::from_millis(20));
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.elapsed, Duration::from_millis(60));
        assert_eq!(a.elapsed_max, Duration::from_millis(30));
    }

    #[test]
    fn merge_treats_legacy_records_elapsed_as_max() {
        // A record built without set_elapsed (elapsed_max still zero)
        // must still contribute to the worst case.
        let mut a = QueryStats::default();
        a.set_elapsed(Duration::from_millis(5));
        let legacy = QueryStats {
            elapsed: Duration::from_millis(40),
            ..Default::default()
        };
        a.merge(&legacy);
        assert_eq!(a.elapsed_max, Duration::from_millis(40));
    }

    #[test]
    fn merge_keeps_db_size_max_not_sum() {
        let mut a = QueryStats {
            db_size: 100,
            ..Default::default()
        };
        let b = QueryStats {
            db_size: 100,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.db_size, 100, "db_size is a property, not an accumulator");
    }

    #[test]
    fn stage_elapsed_merges_by_name() {
        let mut a = QueryStats::default();
        a.add_stage_elapsed(stage::CANDIDATES, Duration::from_micros(100));
        a.add_stage_elapsed(stage::EXACT, Duration::from_micros(500));
        let mut b = QueryStats::default();
        b.add_stage_elapsed(stage::CANDIDATES, Duration::from_micros(50));
        b.add_stage_elapsed("LB_IM", Duration::from_micros(70));
        a.merge(&b);
        assert_eq!(
            a.stage_time(stage::CANDIDATES),
            Some(Duration::from_micros(150))
        );
        assert_eq!(a.stage_time(stage::EXACT), Some(Duration::from_micros(500)));
        assert_eq!(a.stage_time("LB_IM"), Some(Duration::from_micros(70)));
        assert_eq!(a.stage_time("nope"), None);
    }

    #[test]
    fn merge_dedupes_degradation_notes() {
        let mut a = QueryStats::default();
        a.record_degradation_once("scan fallback");
        let mut b = QueryStats::default();
        b.record_degradation_once("scan fallback");
        b.record_degradation_once("shard 2 unavailable");
        a.merge(&b);
        assert_eq!(
            a.degradations,
            vec![
                "scan fallback".to_string(),
                "shard 2 unavailable".to_string()
            ]
        );
    }

    #[test]
    fn merge_concatenates_provenance_in_shard_order() {
        let entry = |shard: u32, endpoint: &str, ms: u64| ShardProvenance {
            shard,
            endpoint: endpoint.to_string(),
            latency: Duration::from_millis(ms),
            ..Default::default()
        };
        let mut a = QueryStats {
            provenance: vec![entry(2, "c:1", 9)],
            ..Default::default()
        };
        let b = QueryStats {
            provenance: vec![entry(0, "a:1", 3), entry(1, "b:1", 30)],
            ..Default::default()
        };
        a.merge(&b);
        let shards: Vec<u32> = a.provenance.iter().map(|p| p.shard).collect();
        assert_eq!(shards, vec![0, 1, 2]);
        assert_eq!(a.straggler().unwrap().shard, 1);
    }

    #[test]
    fn straggler_of_plain_stats_is_none() {
        assert!(QueryStats::default().straggler().is_none());
    }

    #[test]
    fn merge_adopts_retrieval_info_without_overwriting() {
        use crate::sketch_tier::{RetrievalInfo, RetrievalMode};
        let mut a = QueryStats::default();
        let b = QueryStats {
            retrieval: Some(RetrievalInfo {
                mode: RetrievalMode::Approximate { epsilon: 0.5 },
                recall: 1.0 / 1.5,
            }),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.retrieval, b.retrieval);
        let c = QueryStats {
            retrieval: Some(RetrievalInfo {
                mode: RetrievalMode::Exact,
                recall: 1.0,
            }),
            ..Default::default()
        };
        a.merge(&c);
        assert_eq!(a.retrieval, b.retrieval, "merge keeps the first entry");
    }

    #[test]
    fn record_degradation_once_dedupes() {
        let mut s = QueryStats::default();
        s.record_degradation_once("solver fell back to Bland");
        s.record_degradation_once("solver fell back to Bland");
        s.record_degradation_once("other");
        assert_eq!(s.degradations.len(), 2);
    }
}
