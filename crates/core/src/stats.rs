//! Work accounting for multistep queries.
//!
//! The paper's evaluation reports two quantities per experiment:
//! *selectivity* (the fraction of the database that reaches the exact EMD
//! refinement step) and *response time*. [`QueryStats`] captures both,
//! plus the hardware-independent operation counts (filter evaluations,
//! index node accesses) that make runs comparable across machines.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters and timing for one multistep query execution.
///
/// Serializable so experiment harnesses can export structured results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Number of database objects (the selectivity denominator).
    pub db_size: usize,
    /// Filter distance evaluations per pipeline stage, in stage order.
    /// The first entry is the candidate source (index or scan filter);
    /// later entries are intermediate scan filters.
    pub filter_evaluations: Vec<(String, u64)>,
    /// Index node accesses performed by the candidate source.
    pub node_accesses: u64,
    /// Exact EMD evaluations — the quantity the paper calls selectivity
    /// when divided by the database size.
    pub exact_evaluations: u64,
    /// Result set size.
    pub results: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Degradation events recorded while answering the query — e.g. the
    /// index first stage failed and the engine fell back to a sequential
    /// scan. Empty for a healthy execution; results remain exact either
    /// way (the fallback filter is also a lower bound).
    pub degradations: Vec<String>,
}

impl QueryStats {
    /// Fraction of the database that required an exact EMD computation —
    /// the paper's selectivity measure (Figures 7–10, left panels).
    pub fn selectivity(&self) -> f64 {
        if self.db_size == 0 {
            0.0
        } else {
            self.exact_evaluations as f64 / self.db_size as f64
        }
    }

    /// Adds a filter-evaluation count for a named stage, merging it into
    /// an existing entry with the same name if present.
    pub fn add_filter_evaluations(&mut self, stage: &str, count: u64) {
        if let Some(entry) = self.filter_evaluations.iter_mut().find(|(n, _)| n == stage) {
            entry.1 += count;
        } else {
            self.filter_evaluations.push((stage.to_string(), count));
        }
    }

    /// Total filter evaluations across all stages.
    pub fn total_filter_evaluations(&self) -> u64 {
        self.filter_evaluations.iter().map(|(_, c)| c).sum()
    }

    /// Merges another record (e.g. to average across query workloads).
    pub fn merge(&mut self, other: &QueryStats) {
        self.db_size = self.db_size.max(other.db_size);
        for (name, count) in &other.filter_evaluations {
            self.add_filter_evaluations(name, *count);
        }
        self.node_accesses += other.node_accesses;
        self.exact_evaluations += other.exact_evaluations;
        self.results += other.results;
        self.elapsed += other.elapsed;
        self.degradations.extend(other.degradations.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_exact_over_db_size() {
        let s = QueryStats {
            db_size: 200,
            exact_evaluations: 5,
            ..Default::default()
        };
        assert!((s.selectivity() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn selectivity_of_empty_db_is_zero() {
        assert_eq!(QueryStats::default().selectivity(), 0.0);
    }

    #[test]
    fn filter_evaluations_merge_by_stage() {
        let mut s = QueryStats::default();
        s.add_filter_evaluations("LB_Man", 10);
        s.add_filter_evaluations("LB_IM", 3);
        s.add_filter_evaluations("LB_Man", 5);
        assert_eq!(
            s.filter_evaluations,
            vec![("LB_Man".to_string(), 15), ("LB_IM".to_string(), 3)]
        );
        assert_eq!(s.total_filter_evaluations(), 18);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            db_size: 100,
            exact_evaluations: 2,
            node_accesses: 7,
            results: 10,
            ..Default::default()
        };
        a.add_filter_evaluations("f", 1);
        let mut b = QueryStats {
            db_size: 100,
            exact_evaluations: 3,
            node_accesses: 1,
            results: 10,
            ..Default::default()
        };
        b.add_filter_evaluations("f", 2);
        a.merge(&b);
        assert_eq!(a.exact_evaluations, 5);
        assert_eq!(a.node_accesses, 8);
        assert_eq!(a.filter_evaluations[0].1, 3);
    }
}
