#![deny(missing_docs)]

//! Lower-bound filters and multistep query processing for the Earth
//! Mover's Distance — the primary contribution of Assent, Wenning & Seidl,
//! *"Approximation Techniques for Indexing the Earth Mover's Distance in
//! Multimedia Databases"*, ICDE 2006.
//!
//! # The problem
//!
//! The Earth Mover's Distance (EMD) ranks histograms the way humans
//! perceive similarity, but each evaluation solves a linear program — far
//! too slow to compare a query against every object of a large multimedia
//! database. The paper's answer is the classic *filter-and-refine*
//! (GEMINI) architecture: cheap, **complete** (never produces false drops)
//! lower-bound filters discard most of the database, and the expensive
//! exact EMD is computed only for the handful of surviving candidates.
//!
//! # What this crate provides
//!
//! * [`Histogram`] and [`HistogramDb`] — the feature data model
//!   ([`histogram`], [`db`]).
//! * [`BinGrid`] and cost-matrix construction — ground distances between
//!   histogram bins ([`ground`]).
//! * Every lower bound of the paper ([`lower_bounds`]):
//!   [`LbAvg`] (Rubner's centroid averaging, §4.1),
//!   [`LbManhattan`] (§4.3), [`LbMax`] (§4.4), [`LbEuclidean`] (§4.5), and
//!   the **Independent Minimization** bound [`LbIm`] (§4.6) with both of
//!   its refinements.
//! * Exact EMD refinement ([`ExactEmd`]) backed by the transportation
//!   simplex of `earthmover-transport`.
//! * Dimensionality reduction for index filters ([`reduce`]): centroid
//!   averaging and highest-variance 3-D reduction of the weighted
//!   Manhattan bound (§4.7).
//! * Multistep query processing ([`multistep`]): range queries, GEMINI
//!   k-NN, and the *optimal* multistep k-NN of Seidl & Kriegel, over
//!   sequential-scan or R-tree candidate sources, with arbitrary filter
//!   chains and full work statistics.
//! * The paper's two-phase pipeline ([`pipeline`]): 3-D R-tree index
//!   filter → `LB_IM` scan filter → exact EMD.
//! * Binary persistence ([`storage`]) and a multi-threaded scan executor
//!   ([`parallel`]) that runs query-compiled block kernels
//!   ([`DistanceKernel`], obtained via [`DistanceMeasure::prepare`]) over
//!   the database's columnar arena.
//!
//! # Quick start
//!
//! ```
//! use earthmover_core::ground::BinGrid;
//! use earthmover_core::histogram::Histogram;
//! use earthmover_core::db::HistogramDb;
//! use earthmover_core::pipeline::QueryEngine;
//!
//! // 8-bin histograms over a 2x2x2 grid of RGB space.
//! let grid = BinGrid::new(vec![2, 2, 2]);
//! let mut db = HistogramDb::new(8);
//! db.push(Histogram::normalized(vec![4.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0]).unwrap());
//! db.push(Histogram::normalized(vec![0.0, 0.0, 2.0, 6.0, 0.0, 0.0, 0.0, 0.0]).unwrap());
//! db.push(Histogram::normalized(vec![3.0, 2.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0]).unwrap());
//!
//! let engine = QueryEngine::builder(&db, &grid).build();
//! let query = Histogram::normalized(vec![4.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
//! let result = engine.knn(&query, 2).expect("query failed");
//! assert_eq!(result.items[0].0, 0); // the identical histogram comes first
//! ```

pub mod cache;
pub mod db;
pub mod deadline;
pub mod error;
pub mod ground;
pub mod histogram;
pub mod lower_bounds;
pub mod multistep;
pub mod notes;
pub mod parallel;
pub mod pipeline;
pub mod provider;
pub mod quadratic_form;
pub mod reduce;
pub mod signature;
pub mod sketch_tier;
pub mod stats;
pub mod storage;

pub use cache::{FilterCache, FilterCacheStats};
pub use db::HistogramDb;
pub use deadline::Deadline;
pub use error::PipelineError;
pub use ground::BinGrid;
pub use histogram::{Histogram, HistogramRef};
pub use lower_bounds::{
    DistanceKernel, DistanceMeasure, ExactEmd, LbAvg, LbEuclidean, LbIm, LbManhattan, LbMax,
};
pub use provider::{BlockData, BlockProvider, RowLease};
pub use sketch_tier::{RetrievalInfo, RetrievalMode, SketchTier};

// Re-export the substrate types users need to construct measures.
pub use earthmover_transport::CostMatrix;
