//! Versioned, checksummed binary persistence for histogram databases.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : 4 bytes  = "EMDB"
//! version : u32      = 1
//! dims    : u32
//! count   : u64
//! data    : count × dims × f64
//! crc32   : u32 over everything above (IEEE polynomial)
//! ```
//!
//! The format stores the *normalized* histograms exactly as the database
//! holds them, so a round trip is bit-identical. No serde format crate is
//! pulled in; the codec is ~100 lines and the CRC catches corruption.
//!
//! Alongside the flat format, this module bridges to the paged column
//! store of `earthmover-storage` (DESIGN.md §14): [`save_paged`] spills
//! a resident database into a page-checksummed column file, and
//! [`open_paged`] mounts such a file behind a bounded buffer pool so
//! corpora larger than RAM can be queried.

use crate::db::HistogramDb;
use crate::provider::PagedBlocks;
pub use earthmover_storage::{ColumnWriter, StdVfs, Vfs};

use earthmover_storage::{rows_per_block_for, BlockPool, ColumnStore};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"EMDB";
const VERSION: u32 = 1;

/// Errors reading or writing a database file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an `EMDB` database.
    BadMagic,
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
    /// The file is shorter than its header promises.
    Truncated,
    /// The checksum does not match — the file is corrupt.
    ChecksumMismatch {
        /// CRC stored in the file.
        expected: u32,
        /// CRC computed over the file contents.
        actual: u32,
    },
    /// The payload contains an invalid histogram (negative/NaN bin).
    InvalidData(String),
    /// The paged column store reported a typed page-level error
    /// (checksum mismatch, out-of-bounds page, I/O fault).
    Page(earthmover_storage::StorageError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an EMDB database file"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::Truncated => write!(f, "file is truncated"),
            StorageError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            StorageError::InvalidData(msg) => write!(f, "invalid payload: {msg}"),
            StorageError::Page(e) => write!(f, "paged store error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Page(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<earthmover_storage::StorageError> for StorageError {
    fn from(e: earthmover_storage::StorageError) -> Self {
        StorageError::Page(e)
    }
}

/// Little-endian reads used by the decoder. Total functions: bytes past
/// the end of the slice read as zero, so there is no panic path. Every
/// caller checks the buffer length before decoding (the `< 24` and
/// `expected_len` guards), which makes zero-extension unreachable; the
/// checksum would reject such input anyway.
fn le_bytes<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (o, b) in out.iter_mut().zip(bytes.iter().skip(at)) {
        *o = *b;
    }
    out
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(le_bytes(bytes, at))
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(le_bytes(bytes, at))
}

fn le_f64(bytes: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(le_bytes(bytes, at))
}

/// Serializes a database into the `EMDB` byte format.
pub fn to_bytes(db: &HistogramDb) -> Vec<u8> {
    let mut buf = Vec::with_capacity(20 + db.len() * db.dims() * 8 + 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(db.dims() as u32).to_le_bytes());
    buf.extend_from_slice(&(db.len() as u64).to_le_bytes());
    for b in db.arena() {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Deserializes a database from the `EMDB` byte format, verifying the
/// checksum and re-validating every histogram.
pub fn from_bytes(bytes: &[u8]) -> Result<HistogramDb, StorageError> {
    if bytes.len() < 24 {
        return Err(StorageError::Truncated);
    }
    if &bytes[0..4] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = le_u32(bytes, 4);
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let dims = le_u32(bytes, 8) as usize;
    let count = le_u64(bytes, 12) as usize;
    if dims == 0 {
        return Err(StorageError::InvalidData("zero dimensionality".into()));
    }
    let payload_len = count
        .checked_mul(dims)
        .and_then(|c| c.checked_mul(8))
        .ok_or_else(|| StorageError::InvalidData("size overflow".into()))?;
    let expected_len = 20 + payload_len + 4;
    if bytes.len() != expected_len {
        return Err(StorageError::Truncated);
    }
    let stored_crc = le_u32(bytes, expected_len - 4);
    let actual_crc = crc32(&bytes[..expected_len - 4]);
    if stored_crc != actual_crc {
        return Err(StorageError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }

    // Decode the payload straight into the columnar arena, validating
    // each record's bins and mass in place (no per-record allocation).
    let mut arena = Vec::with_capacity(count * dims);
    let mut offset = 20;
    for _ in 0..count * dims {
        arena.push(le_f64(bytes, offset));
        offset += 8;
    }
    for (record, row) in arena.chunks_exact(dims).enumerate() {
        if let Some((idx, value)) = row
            .iter()
            .enumerate()
            .find(|(_, b)| !b.is_finite() || **b < 0.0)
        {
            return Err(StorageError::InvalidData(format!(
                "record {record}: bin {idx} = {value} is negative or non-finite"
            )));
        }
        let mass: f64 = row.iter().sum();
        if (mass - 1.0).abs() > 1e-6 {
            return Err(StorageError::InvalidData(format!(
                "record {record}: mass {mass} is not normalized"
            )));
        }
    }
    Ok(HistogramDb::from_normalized_arena_unchecked(dims, arena))
}

/// Writes a database to a file (atomically: temp file + rename).
pub fn save(db: &HistogramDb, path: impl AsRef<Path>) -> Result<(), StorageError> {
    let path = path.as_ref();
    let tmp = path.with_extension("emdb.tmp");
    fs::write(&tmp, to_bytes(db))?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a database from a file.
pub fn load(path: impl AsRef<Path>) -> Result<HistogramDb, StorageError> {
    from_bytes(&fs::read(path)?)
}

/// Default target payload of one column block: 64 KiB, i.e. sixteen
/// 4 KiB pages — large enough to amortize per-page CRC work, small
/// enough that a pool of a few megabytes holds many blocks.
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// Spills a database into a paged column file (DESIGN.md §14): rows are
/// segmented into blocks of [`DEFAULT_BLOCK_BYTES`] and written through
/// the CRC-checked page file. The result can be mounted with
/// [`open_paged`] under a bounded memory budget.
pub fn save_paged(db: &HistogramDb, path: impl AsRef<Path>) -> Result<(), StorageError> {
    save_paged_with(
        &StdVfs,
        db,
        path.as_ref(),
        rows_per_block_for(db.dims(), DEFAULT_BLOCK_BYTES),
    )
}

/// [`save_paged`] with an explicit [`Vfs`] and block granularity (rows
/// per block) — used by tests to force many tiny blocks and to inject
/// write faults.
pub fn save_paged_with(
    vfs: &dyn Vfs,
    db: &HistogramDb,
    path: &Path,
    rows_per_block: usize,
) -> Result<(), StorageError> {
    let mut writer = ColumnWriter::create_with(vfs, path, db.dims(), rows_per_block)?;
    for b in 0..db.num_blocks() {
        let data = db
            .block(b)
            .map_err(|e| StorageError::InvalidData(e.to_string()))?;
        writer.append_rows(&data)?;
    }
    writer.finish()?;
    Ok(())
}

/// Mounts a paged column file as a read-only [`HistogramDb`] whose
/// buffer pool holds at most `max_resident_bytes` of decoded blocks
/// (at least one block). Queries stream cold blocks through the pool;
/// corrupted or unreadable blocks surface as typed pipeline errors at
/// query time, never panics.
pub fn open_paged(
    path: impl AsRef<Path>,
    max_resident_bytes: usize,
) -> Result<HistogramDb, StorageError> {
    open_paged_with(&StdVfs, path.as_ref(), max_resident_bytes)
}

/// [`open_paged`] with an explicit [`Vfs`] (fault injection in tests).
pub fn open_paged_with(
    vfs: &dyn Vfs,
    path: &Path,
    max_resident_bytes: usize,
) -> Result<HistogramDb, StorageError> {
    let store = ColumnStore::open_with(vfs, path)?;
    let meta = store.meta();
    let block_bytes = meta.rows_per_block * meta.dims * 8;
    let capacity = (max_resident_bytes / block_bytes.max(1)).max(1);
    let pool = BlockPool::new(store, capacity);
    Ok(HistogramDb::from_paged(PagedBlocks::new(pool)))
}

/// CRC-32 (IEEE 802.3) over a byte slice, table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Build the table on first use; 1 KiB, computed once.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_db() -> HistogramDb {
        let mut db = HistogramDb::new(3);
        db.push(Histogram::new(vec![1.0, 2.0, 3.0]).unwrap());
        db.push(Histogram::new(vec![0.0, 0.5, 0.5]).unwrap());
        db.push(Histogram::new(vec![9.0, 0.0, 1.0]).unwrap());
        db
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_round_trip() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(db, loaded);
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("earthmover-storage-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.emdb");
        save(&db, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(db, loaded);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_corruption() {
        let db = sample_db();
        let mut bytes = to_bytes(&db);
        // Flip one payload byte.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn detects_truncation() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        assert!(matches!(
            from_bytes(&bytes[..bytes.len() - 3]),
            Err(StorageError::Truncated)
        ));
        assert!(matches!(from_bytes(&[]), Err(StorageError::Truncated)));
    }

    #[test]
    fn detects_bad_magic_and_version() {
        let db = sample_db();
        let mut bytes = to_bytes(&db);
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(StorageError::BadMagic)));

        let mut bytes = to_bytes(&db);
        bytes[4] = 99;
        // Fixing the CRC so the version check (before data validation) is
        // what fires is unnecessary: version is checked before the CRC.
        assert!(matches!(
            from_bytes(&bytes),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn empty_db_round_trips() {
        let db = HistogramDb::new(5);
        let loaded = from_bytes(&to_bytes(&db)).unwrap();
        assert_eq!(db, loaded);
        assert_eq!(loaded.dims(), 5);
    }

    #[test]
    fn paged_round_trip_is_bit_identical() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("earthmover-storage-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paged.emdc");
        let _ = fs::remove_file(&path);
        // Two rows per block -> two blocks; pool of one block forces
        // eviction between row reads.
        save_paged_with(&StdVfs, &db, &path, 2).unwrap();
        let paged = open_paged(&path, 1).unwrap();
        assert!(paged.is_paged());
        assert_eq!(paged.dims(), db.dims());
        assert_eq!(paged.len(), db.len());
        assert_eq!(paged.num_blocks(), 2);
        for id in 0..db.len() {
            assert_eq!(
                paged.try_row(id).unwrap().bins(),
                db.get(id).bins(),
                "row {id} must round-trip bit-identically"
            );
        }
        assert!(paged.pool_stats().is_some());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn paged_db_rejects_ingest() {
        use crate::histogram::HistogramError;
        let db = sample_db();
        let dir = std::env::temp_dir().join("earthmover-storage-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("readonly.emdc");
        let _ = fs::remove_file(&path);
        save_paged(&db, &path).unwrap();
        let mut paged = open_paged(&path, DEFAULT_BLOCK_BYTES).unwrap();
        assert_eq!(
            paged.try_push(Histogram::new(vec![1.0, 0.0, 0.0]).unwrap()),
            Err(HistogramError::ReadOnly)
        );
        fs::remove_file(&path).unwrap();
    }
}
