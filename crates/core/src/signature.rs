//! Signatures: variable-length weighted point sets (§1 of the paper).
//!
//! Where a histogram fixes a global binning up front, a *signature*
//! adapts to each object: it is a set of `(representative, weight)`
//! pairs, e.g. the dominant colors of one image found by clustering its
//! pixels. Two signatures generally differ in length, so their EMD is a
//! **rectangular** transportation problem with the ground distance
//! evaluated between representatives on demand.
//!
//! The paper scopes its indexing contribution to classical histograms
//! (§1); signatures are provided here as the natural generalization the
//! same exact solver supports, together with partial (unbalanced)
//! matching.

use earthmover_transport::{
    emd_partial_rect, solve_transportation_rect, Flow, RectCost, TransportError, BALANCE_EPS,
};
use std::fmt;

/// A weighted point set in some feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

/// Errors constructing a [`Signature`].
#[derive(Debug, Clone, PartialEq)]
pub enum SignatureError {
    /// `points` and `weights` differ in length.
    LengthMismatch {
        /// Number of representative points supplied.
        points: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A weight is negative or non-finite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Representatives have inconsistent arity.
    RaggedPoints {
        /// Index of the first point whose arity differs from point 0.
        index: usize,
    },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::LengthMismatch { points, weights } => {
                write!(f, "{points} points but {weights} weights")
            }
            SignatureError::InvalidWeight { index, value } => {
                write!(f, "weight {index} = {value} is negative or non-finite")
            }
            SignatureError::RaggedPoints { index } => {
                write!(f, "point {index} has a different arity than point 0")
            }
        }
    }
}

impl std::error::Error for SignatureError {}

impl Signature {
    /// Builds a signature from representatives and their weights.
    pub fn new(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Result<Self, SignatureError> {
        if points.len() != weights.len() {
            return Err(SignatureError::LengthMismatch {
                points: points.len(),
                weights: weights.len(),
            });
        }
        if let Some(idx) = weights.iter().position(|w| !w.is_finite() || *w < 0.0) {
            return Err(SignatureError::InvalidWeight {
                index: idx,
                value: weights[idx],
            });
        }
        if let Some(first) = points.first() {
            let d = first.len();
            if let Some(idx) = points.iter().position(|p| p.len() != d) {
                return Err(SignatureError::RaggedPoints { index: idx });
            }
        }
        Ok(Signature { points, weights })
    }

    /// Number of `(point, weight)` entries.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the signature has no entries.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The representatives.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total weight.
    pub fn mass(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Builds the rectangular ground-distance matrix to another
    /// signature.
    fn cost_to(&self, other: &Signature, ground: impl Fn(&[f64], &[f64]) -> f64) -> RectCost {
        RectCost::from_fn(self.len(), other.len(), |i, j| {
            ground(&self.points[i], &other.points[j])
        })
    }

    /// The exact EMD between two equal-mass signatures under the given
    /// ground distance, normalized by the total mass.
    pub fn emd(
        &self,
        other: &Signature,
        ground: impl Fn(&[f64], &[f64]) -> f64,
    ) -> Result<f64, TransportError> {
        let (mx, my) = (self.mass(), other.mass());
        let scale = mx.max(my).max(1.0);
        if (mx - my).abs() > BALANCE_EPS * scale {
            return Err(TransportError::Unbalanced {
                supply: mx,
                demand: my,
            });
        }
        if mx <= 0.0 {
            return Ok(0.0);
        }
        let cost = self.cost_to(other, ground);
        let sol = solve_transportation_rect(&self.weights, &other.weights, &cost)?;
        Ok(sol.total_cost / mx)
    }

    /// Partial (unbalanced) EMD: only `min(mass, other.mass)` units are
    /// matched; the surplus stays free. Not a metric — see
    /// [`earthmover_transport::emd_partial`].
    pub fn emd_partial(
        &self,
        other: &Signature,
        ground: impl Fn(&[f64], &[f64]) -> f64,
    ) -> Result<(f64, Vec<Flow>), TransportError> {
        let cost = self.cost_to(other, ground);
        emd_partial_rect(&self.weights, &other.weights, &cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::euclidean;

    fn sig(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Signature {
        Signature::new(points, weights).unwrap()
    }

    #[test]
    fn identical_signatures_distance_zero() {
        let s = sig(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![0.5, 0.5]);
        assert_eq!(s.emd(&s, euclidean).unwrap(), 0.0);
    }

    #[test]
    fn point_mass_signatures() {
        let a = sig(vec![vec![0.0, 0.0]], vec![1.0]);
        let b = sig(vec![vec![3.0, 4.0]], vec![1.0]);
        assert!((a.emd(&b, euclidean).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn different_lengths_are_fine() {
        // One cluster of mass 2 vs two clusters of mass 1 each, both at
        // distance 1 from the single cluster: EMD = 1.
        let a = sig(vec![vec![0.0]], vec![2.0]);
        let b = sig(vec![vec![1.0], vec![-1.0]], vec![1.0, 1.0]);
        assert!((a.emd(&b, euclidean).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_histogram_emd_on_grid_signature() {
        // A histogram is the special case of a signature whose points are
        // the bin centroids.
        use crate::ground::BinGrid;
        use crate::histogram::Histogram;
        use crate::lower_bounds::{DistanceMeasure, ExactEmd};
        let grid = BinGrid::new(vec![2, 2]);
        let x = Histogram::new(vec![0.4, 0.1, 0.2, 0.3]).unwrap();
        let y = Histogram::new(vec![0.1, 0.4, 0.3, 0.2]).unwrap();
        let hist_emd = ExactEmd::new(grid.cost_matrix()).distance(&x, &y);
        let sx = sig(grid.centroids().to_vec(), x.bins().to_vec());
        let sy = sig(grid.centroids().to_vec(), y.bins().to_vec());
        let sig_emd = sx.emd(&sy, euclidean).unwrap();
        assert!((hist_emd - sig_emd).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_rejected_by_emd_but_not_partial() {
        let a = sig(vec![vec![0.0]], vec![2.0]);
        let b = sig(vec![vec![1.0]], vec![1.0]);
        assert!(matches!(
            a.emd(&b, euclidean),
            Err(TransportError::Unbalanced { .. })
        ));
        let (d, flows) = a.emd_partial(&b, euclidean).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        assert_eq!(flows.len(), 1);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Signature::new(vec![vec![0.0]], vec![]),
            Err(SignatureError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Signature::new(vec![vec![0.0]], vec![-1.0]),
            Err(SignatureError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Signature::new(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 1.0]),
            Err(SignatureError::RaggedPoints { index: 1 })
        ));
    }

    #[test]
    fn empty_signatures() {
        let e = sig(vec![], vec![]);
        assert!(e.is_empty());
        assert_eq!(e.emd(&e, euclidean).unwrap(), 0.0);
    }
}
