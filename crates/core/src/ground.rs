//! Ground distances: where histogram bins live and what moving mass
//! between them costs.
//!
//! Color histograms partition a feature space (e.g. RGB or HSV) into a
//! grid of cells; each cell is one histogram bin, represented by its
//! centroid. The *ground distance* between two bins is the distance
//! between their centroids, collected into the [`CostMatrix`] that both
//! the exact EMD and every lower bound consume. With a Euclidean ground
//! distance the cost matrix is metric, hence so is the EMD (§2 of the
//! paper) — and Rubner's averaging bound [`crate::LbAvg`] is valid.

use earthmover_transport::CostMatrix;

/// A regular grid partition of a `d`-dimensional unit cube into histogram
/// bins.
///
/// `BinGrid::new(vec![4, 4, 4])` is the paper's 64-bin color histogram
/// layout: RGB space split into 4 slices per channel; `vec![4, 4, 2]` and
/// `vec![4, 2, 2]` give the 32- and 16-bin resolutions of the
/// dimensionality experiment (Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    axes: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

impl BinGrid {
    /// Creates a grid with `axes[d]` slices along feature dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if any axis has zero slices or no axes are given.
    pub fn new(axes: Vec<usize>) -> Self {
        assert!(!axes.is_empty(), "grid needs at least one axis");
        assert!(axes.iter().all(|&a| a > 0), "every axis needs >= 1 slice");
        let num_bins: usize = axes.iter().product();
        let mut centroids = Vec::with_capacity(num_bins);
        for bin in 0..num_bins {
            centroids.push(Self::centroid_of(&axes, bin));
        }
        BinGrid { axes, centroids }
    }

    fn centroid_of(axes: &[usize], mut bin: usize) -> Vec<f64> {
        // Row-major: the last axis varies fastest.
        let mut coords = vec![0.0; axes.len()];
        for d in (0..axes.len()).rev() {
            let idx = bin % axes[d];
            bin /= axes[d];
            coords[d] = (idx as f64 + 0.5) / axes[d] as f64;
        }
        coords
    }

    /// Total number of bins (product of axis resolutions).
    pub fn num_bins(&self) -> usize {
        self.centroids.len()
    }

    /// Feature-space dimensionality (number of axes).
    pub fn feature_dims(&self) -> usize {
        self.axes.len()
    }

    /// The slice counts per axis.
    pub fn axes(&self) -> &[usize] {
        &self.axes
    }

    /// Centroid (cell center) of bin `bin`, in `[0, 1]^d`.
    pub fn centroid(&self, bin: usize) -> &[f64] {
        &self.centroids[bin]
    }

    /// All centroids, indexed by bin.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Maps a feature-space point (clamped into the unit cube) to its bin.
    pub fn bin_of(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.axes.len(), "point arity mismatch");
        let mut bin = 0;
        for (d, &slices) in self.axes.iter().enumerate() {
            let x = point[d].clamp(0.0, 1.0);
            // Map [0,1] onto {0, .., slices-1}; x == 1.0 lands in the last
            // slice.
            let idx = ((x * slices as f64) as usize).min(slices - 1);
            bin = bin * slices + idx;
        }
        bin
    }

    /// The Euclidean ground-distance cost matrix between bin centroids.
    ///
    /// This is the standard choice for color retrieval and is metric by
    /// construction (distinct grid cells have distinct centroids).
    pub fn cost_matrix(&self) -> CostMatrix {
        CostMatrix::from_fn(self.num_bins(), |i, j| {
            euclidean(&self.centroids[i], &self.centroids[j])
        })
    }

    /// A cost matrix from an arbitrary ground distance over centroids.
    pub fn cost_matrix_with(&self, ground: impl Fn(&[f64], &[f64]) -> f64) -> CostMatrix {
        CostMatrix::from_fn(self.num_bins(), |i, j| {
            ground(&self.centroids[i], &self.centroids[j])
        })
    }
}

/// Plain Euclidean distance between two equal-arity points.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_count_is_axis_product() {
        assert_eq!(BinGrid::new(vec![4, 4, 4]).num_bins(), 64);
        assert_eq!(BinGrid::new(vec![4, 4, 2]).num_bins(), 32);
        assert_eq!(BinGrid::new(vec![4, 2, 2]).num_bins(), 16);
    }

    #[test]
    fn centroids_are_cell_centers() {
        let g = BinGrid::new(vec![2, 2]);
        // Row-major: bin 0 = (0,0) cell, bin 1 = (0,1), bin 2 = (1,0), ...
        assert_eq!(g.centroid(0), &[0.25, 0.25]);
        assert_eq!(g.centroid(1), &[0.25, 0.75]);
        assert_eq!(g.centroid(2), &[0.75, 0.25]);
        assert_eq!(g.centroid(3), &[0.75, 0.75]);
    }

    #[test]
    fn bin_of_round_trips_centroids() {
        let g = BinGrid::new(vec![4, 3, 2]);
        for bin in 0..g.num_bins() {
            assert_eq!(g.bin_of(g.centroid(bin)), bin, "bin {bin}");
        }
    }

    #[test]
    fn bin_of_clamps_out_of_range() {
        let g = BinGrid::new(vec![2, 2]);
        assert_eq!(g.bin_of(&[-0.5, -0.5]), 0);
        assert_eq!(g.bin_of(&[1.5, 1.5]), 3);
        assert_eq!(g.bin_of(&[1.0, 1.0]), 3); // boundary lands in last cell
    }

    #[test]
    fn cost_matrix_is_metric() {
        let g = BinGrid::new(vec![3, 3]);
        let c = g.cost_matrix();
        assert_eq!(c.len(), 9);
        assert!(c.is_metric(1e-9));
    }

    #[test]
    fn cost_matrix_values() {
        let g = BinGrid::new(vec![2]);
        let c = g.cost_matrix();
        // centroids 0.25 and 0.75 -> distance 0.5
        assert!((c.get(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn custom_ground_distance() {
        let g = BinGrid::new(vec![2]);
        let c = g.cost_matrix_with(|a, b| 2.0 * (a[0] - b[0]).abs());
        assert!((c.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn empty_axes_panic() {
        let _ = BinGrid::new(vec![]);
    }
}
