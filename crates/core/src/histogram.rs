//! Feature histograms: the objects the database stores and compares.

use std::fmt;

/// A feature histogram: a fixed-arity vector of non-negative bin masses.
///
/// The paper compares histograms of equal total mass (the EMD is only
/// metric under that condition, §2), so retrieval pipelines normalize
/// every histogram to mass 1 on ingest — see [`Histogram::normalized`] and
/// [`crate::db::HistogramDb`]. Raw (unnormalized) histograms remain
/// constructible for the solver-level APIs.
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<f64>,
    /// Cached total mass; kept consistent by construction (bins are
    /// immutable after creation).
    mass: f64,
}

/// Equality compares bin contents only — the cached mass is derived
/// state (and `into_normalized` pins it to exactly 1.0, which a recomputed
/// sum may miss by an ulp).
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.bins == other.bins
    }
}

/// Errors constructing a [`Histogram`] or ingesting one into a
/// [`crate::db::HistogramDb`].
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// A bin entry is negative or non-finite.
    InvalidBin {
        /// Index of the offending bin.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Normalization was requested for an all-zero histogram.
    ZeroMass,
    /// The histogram's arity does not match the database it was pushed
    /// into.
    ArityMismatch {
        /// Arity the database stores.
        expected: usize,
        /// Arity of the rejected histogram.
        got: usize,
    },
    /// Ingest into a paged (disk-backed, immutable) database.
    ReadOnly,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::InvalidBin { index, value } => {
                write!(f, "bin {index} = {value} is negative or non-finite")
            }
            HistogramError::ZeroMass => write!(f, "cannot normalize an all-zero histogram"),
            HistogramError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "histogram arity mismatch: database stores {expected} bins, got {got}"
                )
            }
            HistogramError::ReadOnly => {
                write!(
                    f,
                    "cannot ingest into a paged (read-only) database; build the column \
                     file offline with storage::save_paged (or stream rows through \
                     storage::ColumnWriter) and reopen it with storage::open_paged"
                )
            }
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Wraps bins that are trusted to be valid (non-negative, finite) and
    /// normalized to total mass 1 — the invariant every
    /// [`crate::db::HistogramDb`] row carries. The cached mass is pinned
    /// to exactly `1.0`, mirroring [`Histogram::into_normalized`], so a
    /// view materialized from the columnar arena behaves bit-identically
    /// to the histogram that was ingested.
    pub(crate) fn from_normalized_slice(bins: &[f64]) -> Histogram {
        debug_assert!(
            bins.iter().all(|b| b.is_finite() && *b >= 0.0),
            "trusted bins must be valid"
        );
        debug_assert!(
            (bins.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "trusted bins must be mass-normalized"
        );
        Histogram {
            bins: bins.to_vec(),
            mass: 1.0,
        }
    }

    /// Wraps raw bin masses, validating non-negativity and finiteness.
    pub fn new(bins: Vec<f64>) -> Result<Self, HistogramError> {
        if let Some(idx) = bins.iter().position(|b| !b.is_finite() || *b < 0.0) {
            return Err(HistogramError::InvalidBin {
                index: idx,
                value: bins[idx],
            });
        }
        let mass = bins.iter().sum();
        Ok(Histogram { bins, mass })
    }

    /// Builds a histogram normalized to total mass 1.
    pub fn normalized(bins: Vec<f64>) -> Result<Self, HistogramError> {
        let h = Self::new(bins)?;
        h.into_normalized()
    }

    /// Consumes the histogram and rescales it to total mass 1.
    pub fn into_normalized(mut self) -> Result<Self, HistogramError> {
        if self.mass <= 0.0 {
            return Err(HistogramError::ZeroMass);
        }
        let inv = 1.0 / self.mass;
        for b in &mut self.bins {
            *b *= inv;
        }
        self.mass = 1.0;
        Ok(self)
    }

    /// Number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True for a zero-arity histogram.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Mass of bin `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.bins[i]
    }

    /// The raw bin masses.
    #[inline]
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Total mass `m = Σ_i x_i` (cached).
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// True when the two histograms carry the same total mass within a
    /// relative tolerance — the precondition of every distance in this
    /// crate.
    pub fn mass_matches(&self, other: &Histogram, rel_tol: f64) -> bool {
        let scale = self.mass.abs().max(other.mass.abs()).max(1.0);
        (self.mass - other.mass).abs() <= rel_tol * scale
    }
}

impl AsRef<[f64]> for Histogram {
    fn as_ref(&self) -> &[f64] {
        &self.bins
    }
}

/// A borrowed, zero-copy view of one mass-normalized histogram inside a
/// [`crate::db::HistogramDb`] columnar arena.
///
/// The database stores all bins in a single contiguous `Vec<f64>` with
/// stride `dims`; a `HistogramRef` is just a window over one row, so
/// handing rows to distance kernels costs nothing. The viewed bins are
/// guaranteed valid (finite, non-negative) and normalized to total mass 1
/// by the ingest path. Use [`HistogramRef::to_histogram`] when an owned
/// [`Histogram`] is required (e.g. to use a database row as a query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramRef<'a> {
    bins: &'a [f64],
}

impl<'a> HistogramRef<'a> {
    /// Wraps a slice of mass-normalized bins.
    ///
    /// The caller vouches for the database row invariant: every entry is
    /// finite and non-negative and the entries sum to 1 (within storage
    /// tolerance). Checked only by debug assertions — this sits on the
    /// per-row hot path.
    pub fn new(bins: &'a [f64]) -> Self {
        debug_assert!(
            bins.iter().all(|b| b.is_finite() && *b >= 0.0),
            "histogram view over invalid bins"
        );
        debug_assert!(
            (bins.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "histogram view over unnormalized bins"
        );
        HistogramRef { bins }
    }

    /// Number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True for a zero-arity view.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The viewed bin masses, borrowing from the arena (not from `self`).
    #[inline]
    pub fn bins(&self) -> &'a [f64] {
        self.bins
    }

    /// Iterates the bin masses.
    pub fn iter(&self) -> impl Iterator<Item = &'a f64> {
        self.bins.iter()
    }

    /// Materializes an owned [`Histogram`] from the view. The copy's
    /// cached mass is pinned to exactly 1.0 (the arena invariant), so it
    /// behaves identically to the histogram originally ingested.
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_normalized_slice(self.bins)
    }
}

impl AsRef<[f64]> for HistogramRef<'_> {
    fn as_ref(&self) -> &[f64] {
        self.bins
    }
}

impl From<HistogramRef<'_>> for Histogram {
    fn from(r: HistogramRef<'_>) -> Histogram {
        r.to_histogram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_cached_sum() {
        let h = Histogram::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(h.mass(), 6.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(1), 2.0);
    }

    #[test]
    fn rejects_negative_bins() {
        let err = Histogram::new(vec![1.0, -0.5]).unwrap_err();
        assert_eq!(
            err,
            HistogramError::InvalidBin {
                index: 1,
                value: -0.5
            }
        );
    }

    #[test]
    fn rejects_nan_bins() {
        assert!(Histogram::new(vec![f64::NAN]).is_err());
        assert!(Histogram::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn normalization() {
        let h = Histogram::normalized(vec![2.0, 6.0]).unwrap();
        assert!((h.mass() - 1.0).abs() < 1e-12);
        assert!((h.get(0) - 0.25).abs() < 1e-12);
        assert!((h.get(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_normalization_fails() {
        assert_eq!(
            Histogram::normalized(vec![0.0, 0.0]).unwrap_err(),
            HistogramError::ZeroMass
        );
    }

    #[test]
    fn mass_matching() {
        let a = Histogram::new(vec![0.5, 0.5]).unwrap();
        let b = Histogram::new(vec![1.0, 0.0]).unwrap();
        let c = Histogram::new(vec![1.0, 0.5]).unwrap();
        assert!(a.mass_matches(&b, 1e-9));
        assert!(!a.mass_matches(&c, 1e-9));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(vec![]).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.mass(), 0.0);
    }
}
