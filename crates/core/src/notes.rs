//! Canonical degradation-note registry.
//!
//! Degradation notes are the human-readable audit trail of every
//! graceful-degradation path in the system: deadline cutoffs, overload
//! shedding, solver recovery-ladder rungs, unreachable shard groups.
//! They are also *merge keys* — the coordinator deduplicates notes when
//! folding per-shard [`crate::stats::QueryStats`] together
//! (`record_degradation_once`), and tests grep for them — so a typo'd
//! note silently forks the dedup and breaks the operator-facing story.
//!
//! Like the observability name registry (`obs::names`), this module
//! pins every note to one spelling. `xlint`'s `degradation_registry`
//! rule enforces it statically: a `*_NOTE`/`RUNG_*` constant or a
//! literal recorded at a `record_degradation*`/`degradations.push`
//! site that is not declared here fails the lint.
//!
//! Two shapes exist:
//!
//! - [`NOTE_LITERALS`] — complete notes recorded verbatim;
//! - [`NOTE_PREFIXES`] — the static head of notes that append runtime
//!   detail (`format!`-built), e.g. `"SHARD_UNAVAILABLE: shard group 2
//!   (connect refused)"`. Matching is on the prefix.
//!
//! The constants the code actually records live next to their
//! subsystem ([`crate::deadline::DEADLINE_NOTE`],
//! [`crate::lower_bounds::RUNG_BLAND`], serve's `OVERLOAD_NOTE` and
//! `SHARD_UNAVAILABLE_NOTE`); this registry re-states their values as
//! data so the lint can diff spellings without resolving Rust paths.

/// Complete degradation notes, recorded verbatim at their site.
pub const NOTE_LITERALS: &[&str] = &[
    // crates/core/src/deadline.rs — DEADLINE_NOTE
    "deadline expired; result is a partial best-effort prefix",
    // crates/serve/src/protocol.rs — OVERLOAD_NOTE
    "server overloaded; request shed before execution",
    // crates/core/src/lower_bounds/exact.rs — RUNG_BLAND
    "exact EMD: transportation simplex hit its pivot cap; recovered via Bland's rule",
    // crates/core/src/lower_bounds/exact.rs — RUNG_DENSE_LP
    "exact EMD: transportation simplex exhausted; recovered via dense LP",
    // crates/core/src/sketch_tier.rs — SKETCH_ONLY_NOTE
    "SKETCH_ONLY: refinement skipped; distances are sketch approximations",
    // crates/core/src/sketch_tier.rs — SKETCH_UNAVAILABLE_NOTE
    "SKETCH_UNAVAILABLE: no sketch tier loaded; query served exact",
];

/// Static heads of `format!`-built degradation notes. A recorded note
/// (or note constant) matches the registry when it starts with one of
/// these.
pub const NOTE_PREFIXES: &[&str] = &[
    // crates/serve/src/coord.rs — SHARD_UNAVAILABLE_NOTE, extended with
    // ": shard group {i} ({reason})" at the record site.
    "SHARD_UNAVAILABLE",
    // crates/core/src/pipeline.rs — first-stage source failure fallback.
    "first stage '",
    // crates/serve/src/coord.rs — a shard answered with a local id
    // outside its discovered id map.
    "shard group ",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_unique_and_non_empty() {
        let mut seen = std::collections::BTreeSet::new();
        for s in NOTE_LITERALS.iter().chain(NOTE_PREFIXES) {
            assert!(!s.is_empty(), "empty registry entry");
            assert!(seen.insert(*s), "duplicate registry entry {s:?}");
        }
    }

    #[test]
    fn core_note_constants_are_registered() {
        assert!(NOTE_LITERALS.contains(&crate::deadline::DEADLINE_NOTE));
        assert!(NOTE_LITERALS.contains(&crate::lower_bounds::RUNG_BLAND));
        assert!(NOTE_LITERALS.contains(&crate::lower_bounds::RUNG_DENSE_LP));
        assert!(NOTE_LITERALS.contains(&crate::sketch_tier::SKETCH_ONLY_NOTE));
        assert!(NOTE_LITERALS.contains(&crate::sketch_tier::SKETCH_UNAVAILABLE_NOTE));
    }

    #[test]
    fn no_literal_shadows_a_shorter_prefix_ambiguously() {
        // A literal that begins with a registered prefix would make the
        // prefix rule and the literal rule disagree about which entry
        // "owns" a site — keep the namespaces disjoint.
        for lit in NOTE_LITERALS {
            for pre in NOTE_PREFIXES {
                assert!(
                    !lit.starts_with(pre),
                    "literal {lit:?} starts with registered prefix {pre:?}"
                );
            }
        }
    }
}
