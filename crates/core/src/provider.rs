//! Block-granular row storage behind [`crate::db::HistogramDb`].
//!
//! The database used to *be* its arena: one resident row-major
//! `Vec<f64>`. This module turns that arena into an implementation
//! detail behind the [`BlockProvider`] trait, with two providers:
//!
//! * [`ResidentBlocks`] — the classic fully-resident arena, exposed as
//!   a single block so existing whole-arena kernel scans keep their
//!   exact shape (and therefore their exact floating-point results);
//! * [`PagedBlocks`] — rows live in an on-disk column file
//!   ([`earthmover_storage::ColumnStore`]) behind a fixed-capacity
//!   [`BlockPool`]; a block access returns a pinned lease and may fail
//!   with a typed storage error (bad checksum, I/O fault) instead of
//!   panicking.
//!
//! Scans iterate blocks; point lookups go through [`RowLease`], which
//! keeps the backing block pinned for as long as the row is borrowed.
//! Bit-identical results are a contract, not an accident: a paged block
//! decodes to exactly the floats that were written, and the kernel
//! `eval_block` contract (`out[i] == eval(row i)`) makes per-block
//! evaluation equal to whole-arena evaluation row for row.

use crate::histogram::Histogram;
use earthmover_storage::{BlockLease, BlockPool, BlockPoolStats, ColumnMeta, StorageError};
use std::sync::Arc;

/// Uniform, block-granular access to the rows of a histogram database.
///
/// `block(b)` hands out rows `b * rows_per_block ..` as one contiguous
/// row-major slice; the final block may be partial. Providers are
/// *read* interfaces — ingest goes through the concrete
/// [`ResidentBlocks`].
#[allow(clippy::len_without_is_empty)] // emptiness is the db's concern
pub trait BlockProvider: Send + Sync {
    /// Bins per row (the row stride).
    fn dims(&self) -> usize;

    /// Total rows.
    fn len(&self) -> usize;

    /// Rows in every block but the last.
    fn rows_per_block(&self) -> usize;

    /// The rows of block `block`, pinned for the borrow's lifetime.
    fn block(&self, block: usize) -> Result<BlockData<'_>, StorageError>;

    /// Number of blocks (zero for an empty database).
    fn num_blocks(&self) -> usize {
        self.len().div_ceil(self.rows_per_block().max(1))
    }

    /// Rows held by block `block` (the final block may be partial).
    fn rows_in_block(&self, block: usize) -> usize {
        let start = block * self.rows_per_block();
        self.len().saturating_sub(start).min(self.rows_per_block())
    }
}

/// One block's rows: either a borrow of the resident arena or a pinned
/// buffer-pool lease. Derefs to the row-major `[f64]` payload.
#[derive(Debug)]
pub enum BlockData<'a> {
    /// A window of the fully-resident arena.
    Resident(&'a [f64]),
    /// A pinned lease of a decoded column block.
    Pooled(BlockLease),
}

impl std::ops::Deref for BlockData<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            BlockData::Resident(s) => s,
            BlockData::Pooled(l) => l,
        }
    }
}

/// The fully-resident provider: one arena, one block.
///
/// `rows_per_block == len`, so block-driven scans collapse to a single
/// `eval_block` call over the whole arena — the exact code path (and
/// float-operation order) of the pre-paging executor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResidentBlocks {
    dims: usize,
    data: Vec<f64>,
}

impl ResidentBlocks {
    /// An empty resident arena for rows of `dims` bins.
    pub fn new(dims: usize) -> Self {
        ResidentBlocks {
            dims,
            data: Vec::new(),
        }
    }

    /// Adopts an already-validated row-major arena.
    pub(crate) fn from_arena(dims: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len() % dims.max(1), 0);
        ResidentBlocks { dims, data }
    }

    /// The whole arena.
    pub fn arena(&self) -> &[f64] {
        &self.data
    }

    /// Appends already-normalized bins (ingest path of the database).
    pub(crate) fn extend(&mut self, bins: &[f64]) {
        debug_assert_eq!(bins.len(), self.dims);
        self.data.extend_from_slice(bins);
    }
}

impl BlockProvider for ResidentBlocks {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    fn rows_per_block(&self) -> usize {
        self.len()
    }

    fn block(&self, block: usize) -> Result<BlockData<'_>, StorageError> {
        if block > 0 || self.data.is_empty() {
            return Err(StorageError::BadRecord);
        }
        Ok(BlockData::Resident(&self.data))
    }
}

/// The paged provider: rows live in a column file behind a shared
/// [`BlockPool`]. Cloning shares the pool (and so the cache state).
#[derive(Clone)]
pub struct PagedBlocks {
    pool: Arc<BlockPool>,
    meta: ColumnMeta,
}

impl std::fmt::Debug for PagedBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedBlocks")
            .field("dims", &self.meta.dims)
            .field("rows", &self.meta.rows)
            .field("rows_per_block", &self.meta.rows_per_block)
            .field("pool_capacity", &self.pool.capacity())
            .finish()
    }
}

impl PagedBlocks {
    /// Wraps a block pool (which owns the opened column store).
    pub fn new(pool: BlockPool) -> Self {
        let meta = pool.meta();
        PagedBlocks {
            pool: Arc::new(pool),
            meta,
        }
    }

    /// The underlying pool's access counters.
    pub fn pool_stats(&self) -> BlockPoolStats {
        self.pool.stats()
    }

    /// Blocks currently resident in the pool.
    pub fn resident_blocks(&self) -> usize {
        self.pool.resident_blocks()
    }

    /// Pool frame capacity in blocks.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// True when both handles share one pool (the provider identity).
    pub fn same_pool(&self, other: &PagedBlocks) -> bool {
        Arc::ptr_eq(&self.pool, &other.pool)
    }
}

impl BlockProvider for PagedBlocks {
    fn dims(&self) -> usize {
        self.meta.dims
    }

    fn len(&self) -> usize {
        self.meta.rows
    }

    fn rows_per_block(&self) -> usize {
        self.meta.rows_per_block
    }

    fn block(&self, block: usize) -> Result<BlockData<'_>, StorageError> {
        Ok(BlockData::Pooled(self.pool.lease(block)?))
    }
}

/// A borrowed row that keeps its backing storage alive: either a direct
/// window of the resident arena, or a pinned block lease plus offset.
///
/// This is the paged replacement for handing out raw arena slices — the
/// lease pins the block in the pool, so the bins cannot be evicted (or
/// mutated) while borrowed.
#[derive(Debug)]
pub enum RowLease<'a> {
    /// A window of the resident arena.
    Resident(&'a [f64]),
    /// A pinned block plus the row's offset within it.
    Paged {
        /// The pinned block holding the row.
        block: BlockLease,
        /// Offset of the row's first bin within the block payload.
        start: usize,
        /// Bins per row.
        dims: usize,
    },
}

impl RowLease<'_> {
    /// The row's bins.
    pub fn bins(&self) -> &[f64] {
        match self {
            RowLease::Resident(s) => s,
            RowLease::Paged { block, start, dims } => {
                // In-bounds by construction (the database validated the
                // row id against the block geometry).
                block.get(*start..*start + *dims).unwrap_or(&[])
            }
        }
    }

    /// Materializes an owned [`Histogram`] with a single copy, borrowing
    /// through the lease — no intermediate `HistogramRef`-then-clone
    /// round trip.
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_normalized_slice(self.bins())
    }
}

impl From<RowLease<'_>> for Histogram {
    fn from(r: RowLease<'_>) -> Histogram {
        r.to_histogram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_is_one_block() {
        let mut r = ResidentBlocks::new(2);
        r.extend(&[0.5, 0.5]);
        r.extend(&[0.25, 0.75]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.num_blocks(), 1);
        assert_eq!(r.rows_in_block(0), 2);
        let b = r.block(0).unwrap();
        assert_eq!(&*b, &[0.5, 0.5, 0.25, 0.75]);
        assert!(r.block(1).is_err());
    }

    #[test]
    fn empty_resident_has_no_blocks() {
        let r = ResidentBlocks::new(4);
        assert_eq!(r.num_blocks(), 0);
        assert!(r.block(0).is_err());
    }

    #[test]
    fn row_lease_materializes_once() {
        let lease = RowLease::Resident(&[0.25, 0.75]);
        let h = lease.to_histogram();
        assert_eq!(h.bins(), &[0.25, 0.75]);
        assert_eq!(h.mass(), 1.0);
    }
}
