//! Deadline-budget semantics of the multistep algorithms: an expired
//! deadline yields a *partial, flagged* result — never an error, never a
//! hang, and never an inexact distance.

use earthmover_core::deadline::{Deadline, DEADLINE_NOTE};
use earthmover_core::ground::BinGrid;
use earthmover_core::lower_bounds::{ExactEmd, LbManhattan};
use earthmover_core::multistep::{
    gemini_knn_within, linear_scan_knn_within, optimal_knn_within, range_query_within, ScanSource,
};
use earthmover_core::pipeline::QueryEngine;
use earthmover_core::{Histogram, HistogramDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_histogram(rng: &mut StdRng, dims: usize) -> Histogram {
    let bins: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>() + 1e-3).collect();
    Histogram::new(bins).unwrap()
}

fn setup(count: usize, seed: u64) -> (BinGrid, HistogramDb) {
    let grid = BinGrid::new(vec![2, 2, 2]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = HistogramDb::new(grid.num_bins());
    for _ in 0..count {
        db.push(random_histogram(&mut rng, grid.num_bins()));
    }
    (grid, db)
}

#[test]
fn unbounded_deadline_matches_plain_call() {
    let (grid, db) = setup(60, 1);
    let cost = grid.cost_matrix();
    let exact = ExactEmd::new(cost.clone());
    let source = ScanSource::new(&db, LbManhattan::new(&cost));
    let q = db.get(0).to_histogram();
    let plain = earthmover_core::multistep::optimal_knn(&source, &db, &q, 5, &[], &exact).unwrap();
    let within = optimal_knn_within(&source, &db, &q, 5, &[], &exact, Deadline::none()).unwrap();
    assert_eq!(plain.items, within.items);
    assert!(!within.stats.deadline_expired);
    assert!(within.stats.degradations.is_empty());
}

#[test]
fn expired_deadline_returns_flagged_partial_knn() {
    let (grid, db) = setup(80, 2);
    let cost = grid.cost_matrix();
    let exact = ExactEmd::new(cost.clone());
    let source = ScanSource::new(&db, LbManhattan::new(&cost));
    let q = db.get(3).to_histogram();
    let dead = Deadline::within(Duration::ZERO);

    let r = optimal_knn_within(&source, &db, &q, 5, &[], &exact, dead).unwrap();
    assert!(r.stats.deadline_expired);
    assert_eq!(r.stats.degradations, vec![DEADLINE_NOTE.to_string()]);
    // Nothing was refined before the (already expired) deadline check.
    assert_eq!(r.stats.exact_evaluations, 0);
    assert!(r.items.is_empty());

    let g = gemini_knn_within(&source, &db, &q, 5, &exact, dead).unwrap();
    assert!(g.stats.deadline_expired);
    assert!(g.stats.degradations.contains(&DEADLINE_NOTE.to_string()));

    let l = linear_scan_knn_within(&db, &q, 5, &exact, dead).unwrap();
    assert!(l.stats.deadline_expired);
    assert_eq!(l.stats.exact_evaluations, 0);
}

#[test]
fn expired_deadline_returns_flagged_partial_range() {
    let (grid, db) = setup(70, 3);
    let cost = grid.cost_matrix();
    let exact = ExactEmd::new(cost.clone());
    let source = ScanSource::new(&db, LbManhattan::new(&cost));
    let q = db.get(1).to_histogram();
    let r = range_query_within(
        &source,
        &db,
        &q,
        10.0,
        &[],
        &exact,
        Deadline::within(Duration::ZERO),
    )
    .unwrap();
    assert!(r.stats.deadline_expired);
    assert!(r.stats.degradations.contains(&DEADLINE_NOTE.to_string()));
    // A partial range result is a subset of the full answer.
    assert!(r.items.len() < db.len());
}

#[test]
fn generous_deadline_changes_nothing() {
    let (grid, db) = setup(50, 4);
    let q = db.get(2).to_histogram();
    let engine = QueryEngine::builder(&db, &grid).build();
    let plain = engine.knn(&q, 4).unwrap();
    let within = engine
        .knn_within(&q, 4, Deadline::within(Duration::from_secs(3600)))
        .unwrap();
    assert_eq!(plain.items, within.items);
    assert!(!within.stats.deadline_expired);
}

#[test]
fn engine_knn_within_partial_is_flagged_not_an_error() {
    let (grid, db) = setup(90, 5);
    let q = db.get(0).to_histogram();
    let engine = QueryEngine::builder(&db, &grid).build();
    let r = engine
        .knn_within(&q, 5, Deadline::within(Duration::ZERO))
        .expect("deadline expiry must be a partial result, not an error");
    assert!(r.stats.deadline_expired);
    assert!(r.stats.degradations.contains(&DEADLINE_NOTE.to_string()));
}

#[test]
fn engine_range_within_partial_is_flagged_not_an_error() {
    let (grid, db) = setup(90, 6);
    let q = db.get(0).to_histogram();
    let engine = QueryEngine::builder(&db, &grid).build();
    let r = engine
        .range_within(&q, 10.0, Deadline::within(Duration::ZERO))
        .expect("deadline expiry must be a partial result, not an error");
    assert!(r.stats.deadline_expired);
    assert!(r.items.len() < db.len());
}

#[test]
fn merge_ors_deadline_expired() {
    let (grid, db) = setup(30, 7);
    let q = db.get(0).to_histogram();
    let engine = QueryEngine::builder(&db, &grid).build();
    let healthy = engine.knn(&q, 3).unwrap();
    let cut = engine
        .knn_within(&q, 3, Deadline::within(Duration::ZERO))
        .unwrap();
    let mut merged = healthy.stats.clone();
    merged.merge(&cut.stats);
    assert!(merged.deadline_expired, "merge must OR the partial flag");
}
