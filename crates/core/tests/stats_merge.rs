//! Property tests for [`QueryStats::merge`] as used by the
//! scatter-gather coordinator: per-shard partial stats merged in
//! whatever order shard responses arrive must agree on every aggregate,
//! and degradation notes must be deduplicated without ever losing a
//! distinct note.

use earthmover_core::stats::QueryStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

/// A pool of realistic note strings so random records collide on notes
/// (the interesting case for dedup).
const NOTES: &[&str] = &[
    "index stage failed; fell back to sequential scan",
    "deadline expired; result is a partial best-effort prefix",
    "SHARD_UNAVAILABLE: shard group 1 (connect refused)",
    "SHARD_UNAVAILABLE: shard group 2 (retries exhausted)",
    "solver fell back to Bland",
];

const STAGES: &[&str] = &["candidates", "LB_Man", "LB_IM", "exact"];

fn random_stats(rng: &mut StdRng) -> QueryStats {
    let mut s = QueryStats {
        db_size: rng.gen_range(0..10_000),
        node_accesses: rng.gen_range(0..1_000),
        exact_evaluations: rng.gen_range(0..500),
        results: rng.gen_range(0..64),
        deadline_expired: rng.gen_bool(0.3),
        ..QueryStats::default()
    };
    s.set_elapsed(Duration::from_micros(rng.gen_range(0..2_000_000)));
    for name in STAGES {
        if rng.gen_bool(0.7) {
            s.add_filter_evaluations(name, rng.gen_range(0..1_000));
            s.add_stage_elapsed(name, Duration::from_micros(rng.gen_range(0..500_000)));
        }
    }
    for note in NOTES {
        if rng.gen_bool(0.4) {
            s.record_degradation_once(note);
        }
    }
    s
}

/// Merges `parts` left-to-right into a fresh record, the way the
/// coordinator folds shard responses as they arrive.
fn merge_all(parts: &[QueryStats]) -> QueryStats {
    let mut acc = QueryStats::default();
    for p in parts {
        acc.merge(p);
    }
    acc
}

fn note_set(s: &QueryStats) -> BTreeSet<String> {
    s.degradations.iter().cloned().collect()
}

/// Fisher–Yates with the test's own rng, so the permutation is part of
/// the reproducible case.
fn shuffled(parts: &[QueryStats], rng: &mut StdRng) -> Vec<QueryStats> {
    let mut v = parts.to_vec();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard responses arrive in nondeterministic order; every aggregate
    /// the coordinator reports must be independent of that order.
    #[test]
    fn merge_is_order_independent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..8);
        let parts: Vec<QueryStats> = (0..n).map(|_| random_stats(&mut rng)).collect();
        let forward = merge_all(&parts);
        let permuted = shuffled(&parts, &mut rng);
        let other = merge_all(&permuted);

        prop_assert_eq!(forward.db_size, other.db_size);
        prop_assert_eq!(forward.node_accesses, other.node_accesses);
        prop_assert_eq!(forward.exact_evaluations, other.exact_evaluations);
        prop_assert_eq!(forward.results, other.results);
        prop_assert_eq!(forward.elapsed, other.elapsed);
        prop_assert_eq!(forward.elapsed_max, other.elapsed_max);
        prop_assert_eq!(forward.deadline_expired, other.deadline_expired);
        // Per-name lookups are order-independent even though the Vec
        // insertion order differs with the merge order.
        for name in STAGES {
            prop_assert_eq!(forward.stage_time(name), other.stage_time(name));
        }
        prop_assert_eq!(
            forward.total_filter_evaluations(),
            other.total_filter_evaluations()
        );
        prop_assert_eq!(note_set(&forward), note_set(&other));
    }

    /// Merged aggregates match the hand-computed fold: sums sum, maxes
    /// max, and the note set is the exact union — nothing lost, nothing
    /// duplicated.
    #[test]
    fn merge_matches_manual_fold_and_never_loses_a_note(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..8);
        let parts: Vec<QueryStats> = (0..n).map(|_| random_stats(&mut rng)).collect();
        let merged = merge_all(&parts);

        let exact_sum: u64 = parts.iter().map(|p| p.exact_evaluations).sum();
        prop_assert_eq!(merged.exact_evaluations, exact_sum);
        let elapsed_sum: Duration = parts.iter().map(|p| p.elapsed).sum();
        prop_assert_eq!(merged.elapsed, elapsed_sum);
        let max_elapsed = parts.iter().map(|p| p.elapsed_max).max().unwrap_or_default();
        prop_assert_eq!(merged.elapsed_max, max_elapsed);
        let max_db = parts.iter().map(|p| p.db_size).max().unwrap_or_default();
        prop_assert_eq!(merged.db_size, max_db);
        prop_assert_eq!(
            merged.deadline_expired,
            parts.iter().any(|p| p.deadline_expired)
        );

        let union: BTreeSet<String> = parts.iter().flat_map(note_set).collect();
        prop_assert_eq!(note_set(&merged), union);
        // Dedup: the stored Vec has no repeated note.
        let as_set: BTreeSet<&String> = merged.degradations.iter().collect();
        prop_assert_eq!(as_set.len(), merged.degradations.len());

        for name in STAGES {
            let want: Duration = parts
                .iter()
                .filter_map(|p| p.stage_time(name))
                .sum();
            let got = merged.stage_time(name).unwrap_or_default();
            prop_assert_eq!(got, want);
        }
    }
}
