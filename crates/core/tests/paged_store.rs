//! Paged-store equivalence properties: a database answered through the
//! columnar pagefile + tiny buffer pool must be indistinguishable from
//! the fully-resident arena.
//!
//! Three families:
//!
//! 1. **Bit-identity** (the issue's acceptance criterion): over random
//!    corpora at least 4× larger than the pool, k-NN and range queries
//!    through a capacity-2 pool return *exactly* the results of the
//!    resident path — same ids, bit-identical distances.
//! 2. **Typed degradation**: a flipped bit in a cold data page surfaces
//!    as `PipelineError::Source` from the query, never a panic.
//! 3. **Pool behavior**: the tiny pool actually thrashes (misses and
//!    evictions observed), proving the equivalence is exercised cold.

use earthmover_core::db::HistogramDb;
use earthmover_core::error::PipelineError;
use earthmover_core::pipeline::{FirstStage, QueryEngine};
use earthmover_core::storage::{open_paged_with, save_paged_with};
use earthmover_core::{BinGrid, Histogram};
use earthmover_storage::{FaultVfs, StdVfs, PAGE_SIZE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

const DIMS: usize = 8;
const ROWS_PER_BLOCK: usize = 4;

fn random_histogram(rng: &mut StdRng, n: usize) -> Histogram {
    let mut bins: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    for b in bins.iter_mut() {
        if rng.gen_bool(0.4) {
            *b = 0.0;
        }
    }
    if bins.iter().sum::<f64>() == 0.0 {
        bins[rng.gen_range(0..n)] = 1.0;
    }
    Histogram::normalized(bins).unwrap()
}

fn build_db(seed: u64, rows: usize) -> HistogramDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = HistogramDb::new(DIMS);
    for _ in 0..rows {
        db.push(random_histogram(&mut rng, DIMS));
    }
    db
}

/// Saves `db` through the in-memory fault VFS and reopens it paged with
/// a pool of `pool_blocks` frames.
fn paged_copy(vfs: &FaultVfs, db: &HistogramDb, pool_blocks: usize) -> HistogramDb {
    let path = Path::new("paged.emdc");
    save_paged_with(vfs, db, path, ROWS_PER_BLOCK).unwrap();
    let budget = pool_blocks * ROWS_PER_BLOCK * DIMS * std::mem::size_of::<f64>();
    open_paged_with(vfs, path, budget).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// k-NN and range answers through a capacity-2 pool over a corpus
    /// ≥ 4× the pool are bit-identical to the resident arena.
    #[test]
    fn paged_queries_are_bit_identical_to_resident(
        seed in 0u64..1000,
        rows in 40usize..100,
        k in 1usize..8,
    ) {
        let resident = build_db(seed, rows);
        let vfs = FaultVfs::new();
        let paged = paged_copy(&vfs, &resident, 2);
        prop_assert!(paged.num_blocks() >= 4 * paged.pool_capacity());
        prop_assert_eq!(paged.len(), resident.len());

        let grid = BinGrid::new(vec![2, 2, 2]);
        let q = random_histogram(&mut StdRng::seed_from_u64(seed ^ QUERY_SALT), DIMS);
        // Same pipeline shape on both sides (a paged db silently
        // downgrades index stages, so pin the scan stage explicitly).
        let eng_res = QueryEngine::builder(&resident, &grid)
            .first_stage(FirstStage::ManhattanScan)
            .build();
        let eng_paged = QueryEngine::builder(&paged, &grid)
            .first_stage(FirstStage::ManhattanScan)
            .build();

        let r = eng_res.knn(&q, k).unwrap();
        let p = eng_paged.knn(&q, k).unwrap();
        prop_assert_eq!(&r.items, &p.items, "knn k={} diverged", k);

        let eps = 0.15;
        let r = eng_res.range(&q, eps).unwrap();
        let p = eng_paged.range(&q, eps).unwrap();
        let mut ri = r.items.clone();
        let mut pi = p.items.clone();
        ri.sort_by_key(|(id, _)| *id);
        pi.sort_by_key(|(id, _)| *id);
        prop_assert_eq!(ri, pi, "range eps={} diverged", eps);

        // The default (index) configuration must agree too, modulo the
        // automatic downgrade on the paged side.
        let combo_res = QueryEngine::builder(&resident, &grid).build();
        let combo_paged = QueryEngine::builder(&paged, &grid).build();
        let r = combo_res.knn(&q, k).unwrap();
        let p = combo_paged.knn(&q, k).unwrap();
        let rd: Vec<f64> = r.items.iter().map(|(_, d)| *d).collect();
        let pd: Vec<f64> = p.items.iter().map(|(_, d)| *d).collect();
        prop_assert_eq!(rd, pd, "combo pipeline diverged");

        // The tiny pool must actually have been streaming cold blocks.
        let stats = paged.pool_stats().unwrap();
        prop_assert!(stats.misses > 0, "pool never missed: {:?}", stats);
        prop_assert!(stats.evictions > 0, "pool never evicted: {:?}", stats);
    }
}

/// Salt decorrelating the query seed from the corpus seed.
const QUERY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[test]
fn corrupt_cold_block_degrades_typed_not_panic() {
    let resident = build_db(77, 64);
    let vfs = FaultVfs::new();
    let paged = paged_copy(&vfs, &resident, 2);
    assert!(paged.num_blocks() >= 8);

    // Flip a bit in block 0's first data page (pages 0..=1 are the
    // pagefile header and column meta; each physical slot is
    // PAGE_SIZE + 8 trailer bytes). The pool is cold, so the next read
    // must hit the corrupt bytes.
    assert!(vfs.flip_bit("paged.emdc", 2 * (PAGE_SIZE + 8) + 100, 3));

    let grid = BinGrid::new(vec![2, 2, 2]);
    let engine = QueryEngine::builder(&paged, &grid).build();
    let q = random_histogram(&mut StdRng::seed_from_u64(1), DIMS);
    // Both the first stage and the scan fallback read through the same
    // broken store, so the query must surface a typed source error.
    match engine.knn(&q, 3) {
        Err(PipelineError::Source { stage, reason }) => {
            assert!(!stage.is_empty());
            assert!(!reason.is_empty());
        }
        Err(other) => panic!("expected a Source error, got {other}"),
        Ok(_) => panic!("query through a corrupted store must not succeed"),
    }

    // Direct row access degrades the same way.
    assert!(matches!(
        paged.try_row(0),
        Err(PipelineError::Source { .. })
    ));
}

#[test]
fn fully_pinned_pool_still_answers_exactly() {
    // Pool of 1 frame, corpus of ≥ 16 blocks: every block swap is an
    // eviction or bypass, and answers still match the resident path.
    let resident = build_db(5, 70);
    let vfs = FaultVfs::new();
    let paged = paged_copy(&vfs, &resident, 1);

    let grid = BinGrid::new(vec![2, 2, 2]);
    let q = random_histogram(&mut StdRng::seed_from_u64(2), DIMS);
    let eng_res = QueryEngine::builder(&resident, &grid)
        .first_stage(FirstStage::ManhattanScan)
        .build();
    let eng_paged = QueryEngine::builder(&paged, &grid)
        .first_stage(FirstStage::ManhattanScan)
        .build();
    let r = eng_res.knn(&q, 5).unwrap();
    let p = eng_paged.knn(&q, 5).unwrap();
    assert_eq!(r.items, p.items);
    let stats = paged.pool_stats().unwrap();
    assert!(stats.evictions + stats.bypasses > 0);
}

#[test]
fn std_vfs_round_trip_matches_fault_vfs_layout() {
    // The on-disk format is VFS-independent: save through StdVfs, read
    // back paged, compare every row with the resident original.
    let resident = build_db(11, 50);
    let dir = std::env::temp_dir().join(format!("paged_store_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rt.emdc");
    save_paged_with(&StdVfs, &resident, &path, ROWS_PER_BLOCK).unwrap();
    let budget = 2 * ROWS_PER_BLOCK * DIMS * std::mem::size_of::<f64>();
    let paged = open_paged_with(&StdVfs, &path, budget).unwrap();
    for id in 0..resident.len() {
        let row = paged.try_row(id).unwrap();
        assert_eq!(row.bins(), resident.get(id).bins(), "row {id}");
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
