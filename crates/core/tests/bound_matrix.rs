//! The bound matrix: one property test covering **every**
//! [`DistanceMeasure`] implementation at once.
//!
//! xlint's `admissibility_coverage` rule checks that each type
//! implementing `DistanceMeasure` in `crates/core` is named in this
//! file, so a new filter cannot land without joining the matrix. Two
//! families of properties are checked on random histograms over grid
//! ground distances:
//!
//! 1. **Admissibility** (the completeness precondition of §4 of the
//!    paper): `LB(x, y) ≤ EMD(x, y)` for every lower bound, including
//!    `ExactEmd` itself (trivially, as equality).
//! 2. **Dominance**, the known orderings between the bounds:
//!    `LB_Eucl ≤ LB_Man ≤ EMD` (the Lp chain: for p ≥ 1 and
//!    sub-probability vectors, `‖·‖_p ≤ ‖·‖_1`, scaled by the
//!    respective minimal costs) and the symmetrized independent
//!    minimization dominating the plain one,
//!    `LB_IM^sym = max(fwd, bwd) ≥ LB_IM^fwd`.
//!
//! The approximate tier joins the matrix with its own contracts: the
//! tree embedding's certified two-sided distortion bound, the normal
//! sketch's metric hygiene (symmetry, zero on self), and the ε-relaxed
//! refinement's `(1+ε)` guarantee against the exact k-NN answer.

use earthmover_core::db::HistogramDb;
use earthmover_core::pipeline::QueryEngine;
use earthmover_core::quadratic_form::QuadraticForm;
use earthmover_core::sketch_tier::RetrievalMode;
use earthmover_core::{
    BinGrid, DistanceMeasure, ExactEmd, Histogram, LbAvg, LbEuclidean, LbIm, LbManhattan, LbMax,
};
use earthmover_sketch::{NormalProjection, Sketch, TreeEmbedding};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random normalized histogram with some sparsity.
fn random_histogram(rng: &mut StdRng, n: usize) -> Histogram {
    let mut bins: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    for b in bins.iter_mut() {
        if rng.gen_bool(0.4) {
            *b = 0.0;
        }
    }
    if bins.iter().sum::<f64>() == 0.0 {
        bins[rng.gen_range(0..n)] = 1.0;
    }
    Histogram::normalized(bins).unwrap()
}

/// Slack for accumulated floating-point error in the LP solve.
const EPS: f64 = 1e-9;

/// True when `a` and `b` are equal or adjacent representable doubles.
fn within_one_ulp(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    // Map the bit patterns onto a monotonic integer line so adjacent
    // floats differ by exactly 1 (the -0.0/+0.0 pair collapses to 0).
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    ordered(a).abs_diff(ordered(b)) <= 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Admissibility and dominance for the full measure matrix.
    #[test]
    fn bound_matrix(seed in any::<u64>(), shape in 0usize..3) {
        let axes = [vec![4, 2, 2], vec![4, 4, 2], vec![3, 3, 3]][shape].clone();
        let grid = BinGrid::new(axes);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, grid.num_bins());
        let y = random_histogram(&mut rng, grid.num_bins());

        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
        prop_assert!(exact.is_finite() && exact >= 0.0, "EMD = {exact}");

        let lb_avg = LbAvg::new(grid.centroids().to_vec()).distance(&x, &y);
        let lb_man = LbManhattan::new(&cost).distance(&x, &y);
        let lb_max = LbMax::new(&cost).distance(&x, &y);
        let lb_eucl = LbEuclidean::new(&cost).distance(&x, &y);
        let lb_im_plain = LbIm::with_options(&cost, false, false).distance(&x, &y);
        let lb_im_refined = LbIm::with_options(&cost, true, false).distance(&x, &y);
        let lb_im_sym = LbIm::new(&cost).distance(&x, &y);

        // 1. Admissibility: every row of the matrix is at most the EMD.
        //    ExactEmd participates as the (trivial) identity row.
        let rows: [(&str, f64); 8] = [
            ("ExactEmd", ExactEmd::new(cost.clone()).distance(&x, &y)),
            ("LbAvg", lb_avg),
            ("LbManhattan", lb_man),
            ("LbMax", lb_max),
            ("LbEuclidean", lb_eucl),
            ("LbIm plain", lb_im_plain),
            ("LbIm refined", lb_im_refined),
            ("LbIm symmetric", lb_im_sym),
        ];
        for (name, lb) in rows {
            prop_assert!(lb <= exact + EPS, "{name}: {lb} > EMD {exact}");
            prop_assert!(lb >= 0.0, "{name}: negative bound {lb}");
        }

        // 2a. Dominance within the Lp family: the Euclidean relaxation
        //     never exceeds the Manhattan one.
        prop_assert!(
            lb_eucl <= lb_man + EPS,
            "LB_Eucl {lb_eucl} > LB_Man {lb_man}"
        );

        // 2b. Dominance within the IM family: each strengthening of the
        //     independent minimization only raises the bound.
        prop_assert!(
            lb_im_refined >= lb_im_plain - EPS,
            "diagonal refinement lowered LB_IM: {lb_im_refined} < {lb_im_plain}"
        );
        prop_assert!(
            lb_im_sym >= lb_im_refined - EPS,
            "symmetrization lowered LB_IM: {lb_im_sym} < {lb_im_refined}"
        );
    }

    /// The identity rows of the matrix: every measure reports a zero (or
    /// at least admissible) self-distance, and `ExactEmd` is exactly zero.
    #[test]
    fn self_distance_is_zero(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![3, 3, 2]);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, grid.num_bins());

        let exact = ExactEmd::new(cost.clone()).distance(&x, &x);
        prop_assert!(exact.abs() <= EPS, "EMD(x, x) = {exact}");
        let measures: [(&str, Box<dyn DistanceMeasure>); 6] = [
            ("LbAvg", Box::new(LbAvg::new(grid.centroids().to_vec()))),
            ("LbManhattan", Box::new(LbManhattan::new(&cost))),
            ("LbMax", Box::new(LbMax::new(&cost))),
            ("LbEuclidean", Box::new(LbEuclidean::new(&cost))),
            ("LbIm", Box::new(LbIm::new(&cost))),
            ("ExactEmd", Box::new(ExactEmd::new(cost.clone()))),
        ];
        for (name, m) in &measures {
            let d = m.distance(&x, &x);
            prop_assert!(d.abs() <= EPS, "{name}(x, x) = {d}");
        }
    }

    /// Query-compiled kernels *are* the scalar path: for every
    /// [`DistanceMeasure`] implementation, `prepare(q)` must reproduce
    /// `distance(q, h)` to within one ulp on both the per-row `eval` and
    /// the blocked `eval_block` entry points. (The Lp bounds, LB_Avg and
    /// LB_IM are in fact bit-identical; one ulp is the contract.)
    #[test]
    fn prepared_kernels_match_scalar_distances(seed in any::<u64>(), shape in 0usize..3) {
        let axes = [vec![4, 2, 2], vec![4, 4, 2], vec![3, 3, 3]][shape].clone();
        let grid = BinGrid::new(axes);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        // 19 rows exercises one full 16-row kernel tile *and* its scalar
        // remainder loop.
        for _ in 0..19 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let q = random_histogram(&mut rng, grid.num_bins());

        let measures: [(&str, Box<dyn DistanceMeasure>); 9] = [
            ("LbAvg", Box::new(LbAvg::new(grid.centroids().to_vec()))),
            ("LbManhattan", Box::new(LbManhattan::new(&cost))),
            ("LbMax", Box::new(LbMax::new(&cost))),
            ("LbEuclidean", Box::new(LbEuclidean::new(&cost))),
            ("LbIm plain", Box::new(LbIm::with_options(&cost, false, false))),
            ("LbIm refined", Box::new(LbIm::with_options(&cost, true, false))),
            ("LbIm symmetric", Box::new(LbIm::new(&cost))),
            ("QuadraticForm", Box::new(QuadraticForm::from_cost(&cost))),
            ("ExactEmd", Box::new(ExactEmd::new(cost.clone()))),
        ];
        for (name, m) in &measures {
            let scalar: Vec<f64> = db
                .iter()
                .map(|(_, h)| m.distance(&q, &h.to_histogram()))
                .collect();
            let kernel = m.prepare(&q);
            for ((id, h), want) in db.iter().zip(&scalar) {
                let got = kernel.eval(h.bins());
                prop_assert!(
                    within_one_ulp(got, *want),
                    "{name}: eval(row {id}) = {got:e} vs distance = {want:e}"
                );
            }
            let mut block = vec![0.0; db.len()];
            kernel.eval_block(db.arena(), db.dims(), &mut block);
            for (id, (got, want)) in block.iter().zip(&scalar).enumerate() {
                prop_assert!(
                    within_one_ulp(*got, *want),
                    "{name}: eval_block row {id} = {got:e} vs distance = {want:e}"
                );
            }
        }
    }

    /// The tree embedding's certified two-sided bound: for every
    /// histogram pair, `EMD ≤ d_tree ≤ Γ·EMD` with `Γ = distortion()`.
    /// The lower side is what makes sketch-only recall quantifiable; the
    /// upper side is what `certify()` promised at construction.
    #[test]
    fn tree_embedding_respects_certified_distortion(
        seed in any::<u64>(),
        shape in 0usize..3,
    ) {
        let axes = [vec![4, 2, 2], vec![4, 4, 2], vec![3, 3, 3]][shape].clone();
        let grid = BinGrid::new(axes);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, grid.num_bins());
        let y = random_histogram(&mut rng, grid.num_bins());
        let exact = ExactEmd::new(cost).distance(&x, &y);

        let tree = TreeEmbedding::new(grid.centroids(), seed).unwrap();
        let gamma = tree.distortion();
        prop_assert!(gamma >= 1.0, "distortion {gamma} < 1");
        let mut ex = vec![0.0; tree.dim()];
        let mut ey = vec![0.0; tree.dim()];
        tree.project(x.bins(), &mut ex).unwrap();
        tree.project(y.bins(), &mut ey).unwrap();
        let d_tree = tree.distance(&ex, &ey);
        prop_assert!(
            d_tree + EPS >= exact,
            "tree distance {d_tree} fell below EMD {exact}"
        );
        prop_assert!(
            d_tree <= gamma * exact + EPS,
            "tree distance {d_tree} > {gamma} * EMD {exact}"
        );
    }

    /// Metric hygiene of the normal sketch's closed-form distance: it
    /// makes no admissibility claim, but it must be symmetric,
    /// non-negative, and exactly zero on identical histograms for the
    /// index scan over it to rank sensibly.
    #[test]
    fn normal_sketch_distance_is_symmetric_and_zero_on_self(
        seed in any::<u64>(),
        shape in 0usize..3,
    ) {
        let axes = [vec![4, 2, 2], vec![4, 4, 2], vec![3, 3, 3]][shape].clone();
        let grid = BinGrid::new(axes);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, grid.num_bins());
        let y = random_histogram(&mut rng, grid.num_bins());

        let normal = NormalProjection::new(grid.centroids()).unwrap();
        let mut ex = vec![0.0; normal.dim()];
        let mut ey = vec![0.0; normal.dim()];
        normal.project(x.bins(), &mut ex).unwrap();
        normal.project(y.bins(), &mut ey).unwrap();
        let fwd = normal.distance(&ex, &ey);
        let bwd = normal.distance(&ey, &ex);
        prop_assert!(fwd >= 0.0, "negative normal distance {fwd}");
        prop_assert!(
            within_one_ulp(fwd, bwd),
            "normal distance is asymmetric: {fwd:e} vs {bwd:e}"
        );
        prop_assert!(
            normal.distance(&ex, &ex) == 0.0,
            "normal self-distance is not zero"
        );
    }

    /// The ε-relaxed refinement's contract: every distance it reports is
    /// within `(1+ε)` of the exact k-th-neighbour distance, for any ε.
    /// At ε = 0 the relaxation IS the exact algorithm, so the guarantee
    /// degrades continuously, never abruptly.
    #[test]
    fn relaxed_knn_stays_within_epsilon_of_exact(
        seed in any::<u64>(),
        epsilon in 0.0f64..2.0,
    ) {
        let grid = BinGrid::new(vec![4, 2, 2]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..40 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let q = random_histogram(&mut rng, grid.num_bins());
        let k = 5;

        let engine = QueryEngine::builder(&db, &grid).build();
        let exact = engine.knn(&q, k).unwrap();
        let kth = exact.items.last().map(|(_, d)| *d).unwrap_or(0.0);
        let relaxed = engine
            .knn_mode(&q, k, RetrievalMode::Approximate { epsilon })
            .unwrap();
        prop_assert_eq!(relaxed.items.len(), exact.items.len());
        for (id, d) in &relaxed.items {
            prop_assert!(
                *d <= (1.0 + epsilon) * kth + EPS,
                "relaxed neighbour {id} at {d} exceeds (1+{epsilon}) * exact k-th {kth}"
            );
        }
    }
}
