//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! median-of-batches wall-clock measurement instead of criterion's full
//! statistical machinery. Wired in through `[patch.crates-io]`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// No-op stand-in for criterion's CLI-argument handling.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("  {id}"), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate the per-batch iteration count to ~5 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let lo = times[times.len() / 10];
    let hi = times[times.len() - 1 - times.len() / 10];
    println!(
        "{label}: median {} [{} .. {}] ({samples} samples × {iters} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
