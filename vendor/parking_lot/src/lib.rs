//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Provides `Mutex` and `RwLock` with `parking_lot`'s signature style:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Lock poisoning is transparently ignored (a poisoned lock is
//! re-entered), which matches `parking_lot`'s behavior of not having
//! poisoning at all. Wired in through `[patch.crates-io]`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard of [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
