//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be downloaded. This crate re-implements the
//! subset of its API the workspace's property tests use: the [`proptest!`]
//! macro, [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, [`prop_oneof!`],
//! `any::<T>()`, and `.prop_map`. It is wired in through
//! `[patch.crates-io]` in the workspace `Cargo.toml`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case index and panics;
//!   inputs are reproducible because generation is deterministic per case.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   `i`, so failures reproduce exactly across runs and machines.

pub mod test_runner {
    /// Per-test configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier EMD property
            // tests fast while still exploring a useful space.
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Result type of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case`; every run generates the same inputs.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [lo, hi] (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + ((self.next_u64() as u128) % span) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (stand-in for `proptest::strategy::Strategy`;
    /// generation only, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally weighted boxed strategies (the
    /// engine behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.usize_in(0, self.arms.len() - 1);
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: sign * mantissa * 2^[-64, 64].
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let exp = (rng.next_u64() % 129) as i32 - 64;
            sign * rng.unit_f64() * (2.0f64).powi(exp)
        }
    }

    /// Strategy wrapper returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty list");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_in(0, self.options.len() - 1)].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each function must carry `#[test]` and declare
/// its inputs as `name in strategy`; the macro runs the body over
/// `Config::cases` deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property failed at deterministic case {case}: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the whole process) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        for _ in 0..200 {
            let v = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let xs = prop::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 5);
            assert!(xs.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic(11);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let sel = prop::sample::select(vec!["a", "b"]);
        let mut got = std::collections::HashSet::new();
        for _ in 0..50 {
            got.insert(sel.generate(&mut rng));
        }
        assert_eq!(got.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_strategies_to_args(x in 0usize..10, ys in prop::collection::vec(0.0f64..1.0, 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!ys.is_empty() && ys.len() < 4);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
