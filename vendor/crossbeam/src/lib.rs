//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on
//! `std::thread::scope` (stable since Rust 1.63, after crossbeam's scoped
//! threads were designed). Wired in through `[patch.crates-io]`.
//!
//! Semantics differ from real crossbeam in one corner: when a spawned
//! thread panics, `std::thread::scope` resumes the panic on the spawning
//! thread instead of returning `Err`. Every caller in this workspace
//! immediately `.expect()`s the returned `Result`, so the observable
//! behavior (a panic with the worker's payload) is the same.

pub mod thread {
    use std::any::Any;

    /// Spawn handle passed to the closure of [`scope`].
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns work, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|s| {
            for (i, chunk) in data.chunks_mut(2).enumerate() {
                s.spawn(move |_| {
                    for c in chunk.iter_mut() {
                        *c = i as u32 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }
}
