//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few statistics
//! structs as forward-looking annotations; no format crate consumes them.
//! This stub supplies marker traits of the same names and (behind the
//! `derive` feature) re-exports no-op derive macros, so those annotations
//! compile without network access. Wired in through `[patch.crates-io]`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
