//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! This workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking annotations — no serde data format crate is in the
//! dependency tree, and nothing takes `T: Serialize` bounds. Expanding to
//! an empty token stream keeps those annotations compiling without the
//! real serde machinery. Wired in through `[patch.crates-io]`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
