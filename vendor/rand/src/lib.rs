//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be downloaded. This crate implements exactly the
//! subset of the `rand 0.8` API the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`] — over a xoshiro256** generator seeded with
//! SplitMix64. It is wired in through `[patch.crates-io]` in the workspace
//! `Cargo.toml`; deleting the patch entry restores the real crate with no
//! source changes.
//!
//! Streams differ from the real `rand`, so seeded sequences are *internally*
//! reproducible but not bit-compatible with upstream. All uses in this
//! workspace are tests, benches, and synthetic-data generation, where only
//! internal reproducibility matters.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching the real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step: expands seeds and drives [`rngs::StdRng`] state setup.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, high-quality non-cryptographic PRNG.
    /// The name is kept for drop-in compatibility with `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
