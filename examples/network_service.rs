//! Serving EMD queries over the network: an in-process `emdd` daemon,
//! a client issuing k-NN / health / stats requests, and a graceful
//! drain — all on an ephemeral loopback port.
//!
//! ```sh
//! cargo run --example network_service
//! ```

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::serve::{Client, Outcome, Server, ServerConfig};
use earthmover::BinGrid;
use std::time::Duration;

fn main() {
    // A 64-bin synthetic image database and the paper's 4x4x4 grid.
    let grid = BinGrid::new(vec![4, 4, 4]);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(7));
    let db = corpus.build_database(&grid, 500);

    // Bind on an ephemeral port; `run` blocks, so it gets its own
    // scoped thread (the engine borrows `db` and `grid`, no Arc
    // gymnastics required).
    let cfg = ServerConfig {
        workers: 2,
        queue_depth: 16,
        default_deadline: Some(Duration::from_millis(250)),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr");
    println!("emdd serving {} histograms on {addr}", db.len());

    std::thread::scope(|scope| {
        let server = &server;
        let db = &db;
        let grid = &grid;
        scope.spawn(move || server.run(db, grid, None).expect("server run"));

        let mut client = Client::connect(addr, Duration::from_secs(5)).expect("connect");

        let health = client.health().expect("health");
        println!(
            "health: {} objects, {} bins, up {} ms",
            health.db_size, health.dims, health.uptime_ms
        );

        // 5-NN of object 42's histogram, server default deadline.
        let q = db.get(42).to_histogram();
        match client.knn(&q, 5, 0).expect("knn") {
            Outcome::Complete { items, stats } => {
                println!(
                    "5-NN of object 42 ({} exact EMDs over {} objects):",
                    stats.exact_evaluations, stats.db_size
                );
                for (rank, (id, dist)) in items.iter().enumerate() {
                    println!("  {rank}. object {id}  emd {dist:.6}");
                }
            }
            Outcome::Partial { items, .. } => {
                println!("deadline hit; best-effort prefix of {} items", items.len())
            }
            Outcome::Overloaded { queue_depth, .. } => {
                println!("shed at queue depth {queue_depth}")
            }
        }

        // Prometheus snapshot over the wire, then a graceful drain.
        let prom = client.stats().expect("stats");
        let serve_lines = prom
            .lines()
            .filter(|l| l.starts_with("serve_requests_total"))
            .collect::<Vec<_>>()
            .join("\n");
        println!("{serve_lines}");
        client.shutdown().expect("shutdown");
        println!("drain acknowledged");
    });
    println!("server stopped cleanly");
}
