//! Content-based image retrieval: EMD vs bin-by-bin L1 ranking quality.
//!
//! ```sh
//! cargo run --release --example image_retrieval
//! ```
//!
//! The paper's motivation (§1, Figure 1): bin-by-bin distances confuse a
//! slight color shift with a completely different color distribution,
//! while the EMD charges by how far mass must travel. This example makes
//! that concrete with the synthetic corpus: for each query we check how
//! many of the k nearest neighbors share the query's scene class, under
//! the EMD and under plain L1 — and writes a query image plus its EMD
//! neighbors to PPM files for inspection.

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::imaging::pnm::save_ppm;
use earthmover::{BinGrid, DistanceMeasure, Histogram, QuadraticForm, QueryEngine};

/// Plain (unweighted) L1 distance — the bin-by-bin strawman of §1.
struct PlainL1;

impl DistanceMeasure for PlainL1 {
    fn distance(&self, x: &Histogram, y: &Histogram) -> f64 {
        x.bins()
            .iter()
            .zip(y.bins())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
    fn name(&self) -> &'static str {
        "L1"
    }
}

fn main() {
    let grid = BinGrid::new(vec![4, 4, 4]);
    // A substantial per-image color shift (nearly a full bin width of the 4-grid)
    // recreates the paper's Figure 1 regime: same scene, shifted tones.
    let config = CorpusConfig::default()
        .with_seed(1924)
        .with_classes(8)
        .with_color_shift(0.22);
    let corpus = SyntheticCorpus::new(config);
    let n = 800;
    let k = 10;
    println!("building a {n}-image corpus with 8 scene classes...");
    let (db, classes) = corpus.build_database_with_classes(&grid, n);

    let engine = QueryEngine::builder(&db, &grid).build();
    let l1 = PlainL1;
    let qf = QuadraticForm::from_cost(&grid.cost_matrix());

    // Precision@k under a brute-force ranking for any measure.
    let precision = |measure: &dyn DistanceMeasure, qid: usize| -> usize {
        let q = db.get(qid).to_histogram();
        let mut ranked: Vec<(usize, f64)> = db
            .iter()
            .filter(|(id, _)| *id != qid)
            .map(|(id, h)| (id, measure.distance(&q, &h.to_histogram())))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        ranked
            .iter()
            .take(k)
            .filter(|(id, _)| classes[*id] == classes[qid])
            .count()
    };

    let mut emd_hits = 0usize;
    let mut l1_hits = 0usize;
    let mut qf_hits = 0usize;
    let queries: Vec<usize> = (0..40).map(|i| i * 17 % n).collect();
    for &qid in &queries {
        let q = db.get(qid).to_histogram();
        // EMD ranking via the multistep engine (excluding the query itself).
        let emd_result = engine.knn(&q, k + 1).expect("query failed");
        emd_hits += emd_result
            .items
            .iter()
            .filter(|(id, _)| *id != qid)
            .take(k)
            .filter(|(id, _)| classes[*id] == classes[qid])
            .count();
        // Bin-by-bin L1 and the quadratic form (§2's ladder) by brute force.
        l1_hits += precision(&l1, qid);
        qf_hits += precision(&qf, qid);
    }
    let denom = (queries.len() * k) as f64;
    println!("\nretrieval precision@{k} over {} queries:", queries.len());
    println!("  EMD (multistep): {:.1}%", 100.0 * emd_hits as f64 / denom);
    println!("  quadratic form : {:.1}%", 100.0 * qf_hits as f64 / denom);
    println!("  plain L1       : {:.1}%", 100.0 * l1_hits as f64 / denom);

    // Render one query and its EMD neighbors for visual inspection.
    let out = std::env::temp_dir().join("earthmover-retrieval");
    std::fs::create_dir_all(&out).expect("create output dir");
    let qid = queries[0];
    save_ppm(&corpus.generate_image(qid as u64), out.join("query.ppm")).expect("write ppm");
    let result = engine
        .knn(&db.get(qid).to_histogram(), 6)
        .expect("query failed");
    for (rank, (id, dist)) in result.items.iter().enumerate() {
        let path = out.join(format!("neighbor_{rank}_d{dist:.4}.ppm"));
        save_ppm(&corpus.generate_image(*id as u64), &path).expect("write ppm");
    }
    println!("\nwrote query + 6 nearest images to {}", out.display());
}
