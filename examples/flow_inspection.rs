//! Inspecting the optimal flow: *how* one histogram becomes another.
//!
//! ```sh
//! cargo run --release --example flow_inspection
//! ```
//!
//! The EMD's value is the minimum transport cost, but the minimizer — the
//! flow matrix — is itself informative: it says which tones of one image
//! map to which tones of the other. This example prints the optimal flow
//! between two corpus histograms as a sparse table, checks the marginals,
//! and shows the value decomposition cost-by-cost.

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::{emd_with_flow, BinGrid};

fn main() {
    let grid = BinGrid::new(vec![2, 2, 2]); // small so the table is readable
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(7_000));
    let x = corpus
        .histogram(0, &grid)
        .into_normalized()
        .expect("positive mass");
    let y = corpus
        .histogram(1, &grid)
        .into_normalized()
        .expect("positive mass");
    let cost = grid.cost_matrix();

    let (value, flows) = emd_with_flow(x.bins(), y.bins(), &cost).expect("balanced");
    println!("EMD(image 0, image 1) = {value:.6}\n");
    println!("optimal flow ({} positive entries):", flows.len());
    println!(
        "{:>4} {:>4} {:>10} {:>10} {:>12}",
        "from", "to", "mass", "cost", "contribution"
    );
    let mut total = 0.0;
    for f in &flows {
        let c = cost.get(f.from, f.to);
        let contribution = f.mass * c;
        total += contribution;
        println!(
            "{:>4} {:>4} {:>10.4} {:>10.4} {:>12.6}{}",
            f.from,
            f.to,
            f.mass,
            c,
            contribution,
            if f.from == f.to {
                "   (free: same bin)"
            } else {
                ""
            }
        );
    }
    println!(
        "\nsum of contributions / mass = {:.6} (equals the EMD)",
        total / x.mass()
    );

    // Marginal check: row sums reproduce x, column sums reproduce y.
    let n = grid.num_bins();
    let mut row = vec![0.0; n];
    let mut col = vec![0.0; n];
    for f in &flows {
        row[f.from] += f.mass;
        col[f.to] += f.mass;
    }
    let max_row_err = row
        .iter()
        .zip(x.bins())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let max_col_err = col
        .iter()
        .zip(y.bins())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("marginal errors: rows {max_row_err:.2e}, columns {max_col_err:.2e}");
}
