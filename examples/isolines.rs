//! Reproduces the geometry figures: EMD iso-lines (paper Figure 2) and
//! weighted Lp iso-contours (Figure 4) as PGM images.
//!
//! ```sh
//! cargo run --release --example isolines
//! ```
//!
//! A 2-D feature space is spanned by histograms of three bins constrained
//! to equal mass (two degrees of freedom). Every pixel `(a, b)` maps to
//! the histogram `[a, b, 1 - a - b]`; its gray value encodes the distance
//! to a fixed center histogram. The EMD image shows the polytope
//! (hyperplane-bounded) iso-surfaces that motivate diamond- and box-shaped
//! lower bounds; the Lp images show the filter geometries of §4.2.

use earthmover::imaging::pnm::save_pgm;
use earthmover::{
    BinGrid, CostMatrix, DistanceMeasure, ExactEmd, Histogram, LbEuclidean, LbIm, LbManhattan,
    LbMax,
};

const SIZE: usize = 257;

fn render(
    name: &str,
    cost: &CostMatrix,
    center: &Histogram,
    measure: &dyn DistanceMeasure,
    dir: &std::path::Path,
) {
    let mut values = vec![0.0f64; SIZE * SIZE];
    let mut max = 0.0f64;
    let mut raw = vec![f64::NAN; SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let a = x as f64 / (SIZE - 1) as f64;
            let b = y as f64 / (SIZE - 1) as f64;
            if a + b > 1.0 {
                continue; // outside the simplex
            }
            let h = Histogram::new(vec![a, b, (1.0 - a - b).max(0.0)]).expect("valid");
            let d = measure.distance(&h, center);
            raw[y * SIZE + x] = d;
            max = max.max(d);
        }
    }
    // Normalize into [0,1]; darker = closer, banded to show iso-contours.
    for (v, r) in values.iter_mut().zip(&raw) {
        if r.is_nan() {
            *v = 1.0; // outside the simplex: white
        } else {
            let t = r / max.max(f64::MIN_POSITIVE);
            // 12 contour bands, like the printed figure's stripes.
            *v = (t * 12.0).floor() / 12.0;
        }
    }
    let path = dir.join(format!("{name}.pgm"));
    save_pgm(SIZE, SIZE, &values, &path).expect("write pgm");
    let _ = cost;
    println!("  wrote {}", path.display());
}

fn main() {
    // Three bins whose centroids sit on a line: ground distance |i-j|/2.
    let grid = BinGrid::new(vec![3]);
    let cost = grid.cost_matrix();
    let center = Histogram::new(vec![0.34, 0.33, 0.33]).expect("valid");

    let dir = std::env::temp_dir().join("earthmover-isolines");
    std::fs::create_dir_all(&dir).expect("create output dir");
    println!("rendering {SIZE}x{SIZE} iso-contour images (Figures 2 and 4):");

    let emd = ExactEmd::new(cost.clone());
    render("emd", &cost, &center, &emd, &dir);

    let man = LbManhattan::new(&cost);
    render("lb_man", &cost, &center, &man, &dir);

    let max = LbMax::new(&cost);
    render("lb_max", &cost, &center, &max, &dir);

    let eucl = LbEuclidean::new(&cost);
    render("lb_eucl", &cost, &center, &eucl, &dir);

    let im = LbIm::new(&cost);
    render("lb_im", &cost, &center, &im, &dir);

    println!("\nCompare emd.pgm with the filters: every filter's iso-surface");
    println!("must enclose the EMD's (lower bounding) — LB_IM hugs it tightest.");
}
