//! Filter tightness and cost: how close each lower bound gets to the EMD
//! and what a single evaluation costs.
//!
//! ```sh
//! cargo run --release --example filter_comparison
//! ```
//!
//! For a sample of corpus histogram pairs this prints, per filter, the
//! mean ratio `LB / EMD` (1.0 = perfectly tight, 0.0 = useless) and the
//! measured nanoseconds per evaluation — the two quantities that §3.3
//! calls *good selectivity* and *fast single-pair computation*, whose
//! tension the paper's multistep combination resolves.

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::{
    BinGrid, DistanceMeasure, ExactEmd, LbAvg, LbEuclidean, LbIm, LbManhattan, LbMax,
};
use std::time::Instant;

fn main() {
    for axes in [vec![4, 2, 2], vec![4, 4, 2], vec![4, 4, 4]] {
        let grid = BinGrid::new(axes.clone());
        let n_bins = grid.num_bins();
        let cost = grid.cost_matrix();
        let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(7_777));
        let db = corpus.build_database(&grid, 120);

        let exact = ExactEmd::new(cost.clone());
        let filters: Vec<Box<dyn DistanceMeasure>> = vec![
            Box::new(LbAvg::new(grid.centroids().to_vec())),
            Box::new(LbManhattan::new(&cost)),
            Box::new(LbMax::new(&cost)),
            Box::new(LbEuclidean::new(&cost)),
            Box::new(LbIm::new(&cost)),
        ];

        // Sample pairs and the exact distances once.
        let pairs: Vec<(usize, usize)> = (0..db.len())
            .flat_map(|i| ((i + 1)..db.len()).step_by(7).map(move |j| (i, j)))
            .take(500)
            .collect();
        let exact_values: Vec<f64> = pairs
            .iter()
            .map(|&(i, j)| exact.distance(&db.get(i).to_histogram(), &db.get(j).to_histogram()))
            .collect();

        println!("\n=== {n_bins}-bin histograms (grid {axes:?}) ===");
        println!(
            "{:<10} {:>12} {:>14}",
            "filter", "mean LB/EMD", "ns per eval"
        );
        for filter in &filters {
            let start = Instant::now();
            let mut ratio_sum = 0.0;
            let mut counted = 0usize;
            for (&(i, j), &e) in pairs.iter().zip(&exact_values) {
                let lb = filter.distance(&db.get(i).to_histogram(), &db.get(j).to_histogram());
                assert!(
                    lb <= e + 1e-9,
                    "{} violated lower bounding: {lb} > {e}",
                    filter.name()
                );
                if e > 1e-12 {
                    ratio_sum += lb / e;
                    counted += 1;
                }
            }
            let per_eval = start.elapsed().as_nanos() as f64 / pairs.len() as f64;
            println!(
                "{:<10} {:>12.4} {:>14.0}",
                filter.name(),
                ratio_sum / counted as f64,
                per_eval
            );
        }

        // The exact EMD's own cost, for scale.
        let start = Instant::now();
        for &(i, j) in pairs.iter().take(100) {
            let _ = exact.distance(&db.get(i).to_histogram(), &db.get(j).to_histogram());
        }
        println!(
            "{:<10} {:>12} {:>14.0}",
            "EMD",
            "1.0000",
            start.elapsed().as_nanos() as f64 / 100.0
        );
    }
    println!("\nTightness rises LB_Avg < LB_Man < LB_IM while per-pair cost stays");
    println!("orders of magnitude below the EMD — the gap the multistep\npipeline exploits.");
}
