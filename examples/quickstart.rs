//! Quickstart: build a histogram database, run multistep EMD queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper: feature extraction → lower-bound
//! filters → index-supported multistep k-NN → exact EMD refinement, and
//! prints the work each configuration performed.

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::{BinGrid, FirstStage, QueryEngine};

fn main() {
    // --- 1. Feature space -------------------------------------------------
    // 64-bin color histograms: RGB space cut into a 4×4×4 grid. Moving
    // mass between bins costs the Euclidean distance of the cell centers.
    let grid = BinGrid::new(vec![4, 4, 4]);
    println!(
        "feature space: {} bins over a {:?} RGB grid",
        grid.num_bins(),
        grid.axes()
    );

    // --- 2. Database -------------------------------------------------------
    // A synthetic image corpus (deterministic in the seed) standing in for
    // the paper's 200,000-image collection.
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(2006));
    let n = 2_000;
    println!("generating {n} synthetic images and extracting histograms...");
    let db = corpus.build_database(&grid, n);

    // --- 3. Query engines ---------------------------------------------------
    // The paper's best configuration: a 3-D R-tree on centroid averages
    // feeds the highly selective LB_IM filter, and only the survivors pay
    // for an exact EMD (transportation simplex).
    let query = db.get(17).to_histogram(); // image 17's histogram as the query example
    let k = 10;

    for (label, engine) in [
        (
            "two-phase (LB_Avg 3-D index -> LB_IM -> EMD)",
            QueryEngine::builder(&db, &grid).build(),
        ),
        (
            "index only   (LB_Avg 3-D index -> EMD)",
            QueryEngine::builder(&db, &grid).lb_im(false).build(),
        ),
        (
            "scan filter  (LB_Man scan -> EMD)",
            QueryEngine::builder(&db, &grid)
                .first_stage(FirstStage::ManhattanScan)
                .lb_im(false)
                .build(),
        ),
    ] {
        let result = engine.knn(&query, k).expect("query failed");
        println!("\n=== {label} ===");
        println!(
            "  {k}-NN result ids: {:?}",
            result.items.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
        println!(
            "  exact EMD evaluations: {} of {} objects (selectivity {:.3}%)",
            result.stats.exact_evaluations,
            result.stats.db_size,
            100.0 * result.stats.selectivity()
        );
        for (stage, evals) in &result.stats.filter_evaluations {
            println!("  filter {stage}: {evals} evaluations");
        }
        if result.stats.node_accesses > 0 {
            println!("  index node accesses: {}", result.stats.node_accesses);
        }
        println!("  elapsed: {:?}", result.stats.elapsed);
    }

    println!("\nAll three configurations return the same k-NN set (completeness);");
    println!("they differ only in how much work it took to find it.");
}
