//! Ranking queries: "give me the next nearest image" without fixing k.
//!
//! ```sh
//! cargo run --release --example ranking_stream
//! ```
//!
//! Interactive browsing doesn't know k in advance: the user pages
//! through results until satisfied. `QueryEngine::nearest_stream` serves
//! that pattern — a lazy iterator over `(id, exact EMD)` in nondecreasing
//! order that refines only what the consumed prefix requires. This
//! example pages through results in batches and prints how the exact-EMD
//! work grows with each page.

use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::{BinGrid, QueryEngine};

fn main() {
    let grid = BinGrid::new(vec![4, 4, 4]);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(1337));
    let n = 5_000;
    println!("building a {n}-image database...");
    let db = corpus.build_database(&grid, n);
    let engine = QueryEngine::builder(&db, &grid).build();

    let query = db.get(99).to_histogram();
    let mut stream = engine.nearest_stream(&query).expect("stream open failed");

    println!("\npaging through the exact EMD ranking of {n} images:");
    for page in 0..4 {
        print!("page {page}:");
        for _ in 0..5 {
            match stream.next() {
                Some(Ok((id, d))) => print!("  #{id} ({d:.4})"),
                Some(Err(e)) => {
                    println!("\nstream failed: {e}");
                    return;
                }
                None => break,
            }
        }
        let stats = stream.stats();
        println!(
            "\n        cumulative work: {} exact EMD evaluations ({:.2}% of the database)",
            stats.exact_evaluations,
            100.0 * stats.selectivity()
        );
    }
    println!(
        "\nA sequential scan would have paid {n} EMD evaluations before showing\n\
         the first result; the stream paid for each page as it was turned."
    );
}
