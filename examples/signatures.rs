//! Signatures and partial matching: the EMD generalizations of §1.
//!
//! ```sh
//! cargo run --release --example signatures
//! ```
//!
//! Instead of a fixed global binning, each image is summarized by its
//! own dominant colors (k-means clustering of pixels), producing a
//! *signature* — a variable-length weighted point set. The EMD between
//! signatures is a rectangular transportation problem; this example
//! ranks corpus images against a query by signature EMD and demonstrates
//! partial (unbalanced) matching, which deliberately sacrifices the
//! metric property.

use earthmover::core::ground::euclidean;
use earthmover::core::signature::Signature;
use earthmover::imaging::cluster::color_signature;
use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};

fn main() {
    let config = CorpusConfig::default().with_seed(808).with_classes(6);
    let corpus = SyntheticCorpus::new(config);
    let n = 60;
    let k_clusters = 5;

    println!("clustering {n} images into {k_clusters}-color signatures...");
    let signatures: Vec<Signature> = (0..n as u64)
        .map(|id| color_signature(&corpus.generate_image(id), k_clusters, id))
        .collect();

    // Rank everything against image 0 by signature EMD.
    let query = &signatures[0];
    let query_class = corpus.class_of(0);
    let mut ranked: Vec<(usize, f64)> = signatures
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, s)| {
            (
                i,
                query.emd(s, euclidean).expect("signatures share unit mass"),
            )
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!("\n10 nearest images to image 0 (class {query_class}) by signature EMD:");
    let mut same_class = 0;
    for (i, d) in ranked.iter().take(10) {
        let class = corpus.class_of(*i as u64);
        if class == query_class {
            same_class += 1;
        }
        println!("  image {i:>3}  class {class}  emd {d:.4}");
    }
    println!("  -> {same_class}/10 share the query's scene class");

    // Partial matching: compare the query against *half* of another
    // image's signature mass — the surplus is matched for free.
    println!("\npartial matching (unbalanced masses):");
    let other = &signatures[6]; // same class as image 0 (6 classes)
    let half = Signature::new(
        other.points().to_vec(),
        other.weights().iter().map(|w| w * 0.5).collect(),
    )
    .expect("well-formed");
    let balanced = query.emd(other, euclidean).expect("balanced");
    let (partial, flows) = query.emd_partial(&half, euclidean).expect("partial");
    println!("  balanced EMD(query, other)      = {balanced:.4}");
    println!(
        "  partial  EMD(query, half-other) = {partial:.4} ({} flows)",
        flows.len()
    );
    println!("  the partial match may be cheaper: only half the mass must travel.");
}
