//! # earthmover
//!
//! Index-supported multistep query processing for the **Earth Mover's
//! Distance** — a from-scratch Rust reproduction of
//!
//! > Ira Assent, Andrea Wenning, Thomas Seidl.
//! > *Approximation Techniques for Indexing the Earth Mover's Distance in
//! > Multimedia Databases.* ICDE 2006.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `earthmover-core` | histograms, lower bounds, multistep query processing, the two-phase pipeline |
//! | [`transport`] | `earthmover-transport` | exact EMD via the transportation simplex |
//! | [`lp`] | `earthmover-lp` | generic dense-tableau LP solver (baseline + cross-validation) |
//! | [`rtree`] | `earthmover-rtree` | R-tree index with incremental ranking |
//! | [`imaging`] | `earthmover-imaging` | synthetic corpus, color spaces, histogram extraction, PPM/PGM |
//! | [`serve`] | `earthmover-serve` | `emdd` network query daemon: wire protocol, admission control, deadlines |
//!
//! The most common entry points are lifted to the crate root.
//!
//! ## Example: multistep k-NN over a synthetic image database
//!
//! ```
//! use earthmover::{BinGrid, QueryEngine};
//! use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
//!
//! // 1. A 64-bin color histogram layout and a synthetic image corpus.
//! let grid = BinGrid::new(vec![4, 4, 4]);
//! let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(7));
//! let db = corpus.build_database(&grid, 200);
//!
//! // 2. The paper's two-phase engine: 3-D index → LB_IM → exact EMD.
//! let engine = QueryEngine::builder(&db, &grid).build();
//!
//! // 3. Query: 5 nearest neighbors of image 0's histogram.
//! let result = engine.knn(&db.get(0).to_histogram(), 5).expect("query failed");
//! assert_eq!(result.items.len(), 5);
//! assert_eq!(result.items[0].0, 0); // the image itself, at distance 0
//!
//! // Selectivity: the fraction of the DB that needed an exact EMD.
//! assert!(result.stats.selectivity() < 1.0);
//! ```

pub mod disk;

pub use earthmover_core as core;
pub use earthmover_imaging as imaging;
pub use earthmover_lp as lp;
pub use earthmover_mtree as mtree;
pub use earthmover_obs as obs;
pub use earthmover_rtree as rtree;
pub use earthmover_serve as serve;
pub use earthmover_storage as storage_engine;
pub use earthmover_transport as transport;

pub use earthmover_core::db::HistogramDb;
pub use earthmover_core::error::PipelineError;
pub use earthmover_core::ground::BinGrid;
pub use earthmover_core::histogram::Histogram;
pub use earthmover_core::lower_bounds::{
    DistanceMeasure, ExactEmd, LbAvg, LbEuclidean, LbIm, LbManhattan, LbMax,
};
pub use earthmover_core::multistep::optimal_knn_relaxed_within;
pub use earthmover_core::multistep::{
    gemini_knn, linear_scan_knn, optimal_knn, range_query, QueryResult,
};
pub use earthmover_core::pipeline::{FirstStage, KnnAlgorithm, QueryEngine};
pub use earthmover_core::quadratic_form::QuadraticForm;
pub use earthmover_core::signature::Signature;
pub use earthmover_core::sketch_tier::{RetrievalInfo, RetrievalMode, SketchTier};
pub use earthmover_transport::{emd, emd_partial, emd_with_flow, CostMatrix, RectCost};
