//! Glue between the histogram data model and the paged storage engine:
//! store a [`HistogramDb`] as one record per histogram in an
//! `earthmover-storage` record store.
//!
//! Compared to the flat checksummed format of
//! [`earthmover_core::storage`], the paged form supports incremental
//! appends, tombstoning, and bounded-memory scans through the buffer
//! pool — the shape a long-running retrieval service needs.

use earthmover_core::db::HistogramDb;
use earthmover_core::histogram::Histogram;
use earthmover_storage::{BufferPool, PageFile, RecordStore, StorageError};
use std::path::Path;

/// Record encoding: bin count (u32 LE) followed by the bins as f64 LE.
fn encode_bins(bins: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + bins.len() * 8);
    out.extend_from_slice(&(bins.len() as u32).to_le_bytes());
    for b in bins {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

fn decode_histogram(bytes: &[u8]) -> Result<Histogram, StorageError> {
    if bytes.len() < 4 {
        return Err(StorageError::BadRecord);
    }
    let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    // Checked arithmetic: on 32-bit targets a hostile header (n near
    // u32::MAX) would overflow `4 + n * 8` and alias a short buffer.
    let expected = n
        .checked_mul(8)
        .and_then(|b| b.checked_add(4))
        .ok_or(StorageError::BadRecord)?;
    if bytes.len() != expected {
        return Err(StorageError::BadRecord);
    }
    let bins = bytes[4..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Histogram::new(bins).map_err(|_| StorageError::BadRecord)
}

/// Writes a database into a fresh paged store at `path` (one record per
/// histogram, in id order), returning the record count.
pub fn save_paged(db: &HistogramDb, path: impl AsRef<Path>) -> Result<usize, StorageError> {
    let file = PageFile::create(path)?;
    let pool = BufferPool::new(file, 64);
    let mut store = RecordStore::create(pool)?;
    for (_, h) in db.iter() {
        store.append(&encode_bins(h.bins()))?;
    }
    store.sync()?;
    Ok(db.len())
}

/// Reads a database back from a paged store created by [`save_paged`].
///
/// `dims` must match the stored histograms (it seeds the empty database;
/// each record is validated against it on decode).
pub fn load_paged(path: impl AsRef<Path>, dims: usize) -> Result<HistogramDb, StorageError> {
    let file = PageFile::open(path)?;
    let pool = BufferPool::new(file, 64);
    // `save_paged` always creates the chain at the first allocated page.
    let store = RecordStore::open(pool, earthmover_storage::PageId(1))?;
    let mut db = HistogramDb::new(dims);
    for (_, bytes) in store.scan()? {
        let h = decode_histogram(&bytes)?;
        // `try_push` reports arity mismatches as a typed
        // `HistogramError::ArityMismatch`, so no pre-check is needed.
        db.try_push(h).map_err(|_| StorageError::BadRecord)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earthmover_imaging::corpus::{CorpusConfig, SyntheticCorpus};

    #[test]
    fn paged_round_trip() {
        let grid = earthmover_core::ground::BinGrid::new(vec![2, 2, 2]);
        let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(31));
        let db = corpus.build_database(&grid, 120);

        let dir = std::env::temp_dir().join("earthmover-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paged.db");
        let _ = std::fs::remove_file(&path);

        assert_eq!(save_paged(&db, &path).unwrap(), 120);
        let loaded = load_paged(&path, 8).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (id, h) in db.iter() {
            // Bins re-normalize on ingest; compare within float tolerance.
            for (a, b) in h.bins().iter().zip(loaded.get(id).bins()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_record_headers_are_rejected() {
        // Too short for the header at all.
        assert!(decode_histogram(&[1, 2]).is_err());
        // Bin count far larger than the buffer — must be rejected without
        // any arithmetic overflow, even where usize is 32 bits.
        let mut hostile = u32::MAX.to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0u8; 16]);
        assert!(decode_histogram(&hostile).is_err());
        // Length mismatch (claims 3 bins, carries 2).
        let mut short = 3u32.to_le_bytes().to_vec();
        short.extend_from_slice(&1.0f64.to_le_bytes());
        short.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(decode_histogram(&short).is_err());
    }

    #[test]
    fn wrong_dims_is_rejected() {
        let grid = earthmover_core::ground::BinGrid::new(vec![2, 2, 2]);
        let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(32));
        let db = corpus.build_database(&grid, 5);
        let dir = std::env::temp_dir().join("earthmover-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrongdims.db");
        let _ = std::fs::remove_file(&path);
        save_paged(&db, &path).unwrap();
        assert!(load_paged(&path, 64).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
