//! `emdtool` — command-line front end for the earthmover library.
//!
//! ```sh
//! # Generate a synthetic-corpus histogram database:
//! emdtool generate --out photos.emdb --count 10000 --dims 64 --seed 7
//!
//! # Inspect it:
//! emdtool info --db photos.emdb
//!
//! # k-NN query using database object 42 as the query:
//! emdtool query --db photos.emdb --id 42 --k 10 --pipeline combo
//!
//! # Same query with telemetry: Prometheus + JSON metric dumps and a
//! # JSON-lines span trace on stderr:
//! emdtool query --db photos.emdb --id 42 --metrics-out run --trace-json -
//!
//! # Serve the database over the network and query the daemon:
//! emdtool serve --db photos.emdb --addr 127.0.0.1:4406 &
//! emdtool client --addr 127.0.0.1:4406 --op knn --db photos.emdb --id 42 --k 10
//! emdtool client --addr 127.0.0.1:4406 --op health
//! emdtool client --addr 127.0.0.1:4406 --op shutdown
//!
//! # Distributed tracing and fleet telemetry (against emdd-coord):
//! emdtool trace --addr 127.0.0.1:4410 --db photos.emdb --id 42 --k 10
//! emdtool top --addr 127.0.0.1:4410
//! ```
//!
//! Pipelines: `combo` (3-D LB_Avg index → LB_IM → EMD, the paper's best),
//! `man` (LB_Man scan → EMD), `im` (LB_IM scan → EMD),
//! `scan` (exact EMD over everything — the slow baseline).

use earthmover::core::storage;
use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::obs;
use earthmover::serve as serve_api;
use earthmover::{linear_scan_knn, BinGrid, ExactEmd, FirstStage, HistogramDb, QueryEngine};
use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, flags)) = parse(&args) else {
        eprintln!(
            "usage:\n  emdtool generate --out FILE [--count N] [--dims 16|32|64] [--seed S]\n  \
             emdtool info --db FILE\n  \
             emdtool query --db FILE --id OBJ [--k K] [--pipeline combo|man|im|scan]\n    \
             [--metrics-out PATH]   write PATH.prom + PATH.json metric dumps\n    \
             [--trace-json PATH|-]  stream span records as JSON lines (- = stderr)\n  \
             emdtool serve --db FILE [--addr HOST:PORT] [--workers N] [--queue N]\n    \
             [--default-deadline-ms MS] [--trace-json PATH|-]\n  \
             emdtool client --addr HOST:PORT --op knn|range|health|stats|shutdown\n    \
             [--db FILE --id OBJ] [--k K] [--epsilon E] [--deadline-ms MS]\n    \
             [--mode exact|sketch|approx:EPS]  retrieval tier for --op knn\n  \
             emdtool trace --addr HOST:PORT --db FILE --id OBJ [--k K] [--deadline-ms MS]\n    \
             issue one sampled, traced k-NN and render the per-shard trace tree\n  \
             emdtool top --addr HOST:PORT\n    \
             per-shard fleet table from the coordinator's merged metrics\n  \
             emdtool shard-split --db FILE --shards N --out-prefix P\n    \
             writes P0.emdb .. P{{N-1}}.emdb by coordinator hash placement\n  \
             emdtool store-stats --db FILE [--pool-mb N]\n    \
             paged-store report: blocks, resident fraction, pool hit rate,\n    \
             filter-cache occupancy (converts FILE to FILE.emdc on first use)"
        );
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => generate(&flags),
        "info" => info(&flags),
        "query" => query(&flags),
        "serve" => serve(&flags),
        "client" => client(&flags),
        "trace" => trace(&flags),
        "top" => top(&flags),
        "shard-split" => shard_split(&flags),
        "store-stats" => store_stats(&flags),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `cmd --flag value --flag value ...` into the command and a map.
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    if command.starts_with("--") {
        return None;
    }
    let mut flags = HashMap::new();
    while let Some(flag) = it.next() {
        let name = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(name.to_string(), value.clone());
    }
    Some((command, flags))
}

fn get<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} {v} is not a number")),
    }
}

fn grid_for(dims: usize) -> Result<BinGrid, String> {
    Ok(match dims {
        16 => BinGrid::new(vec![4, 2, 2]),
        32 => BinGrid::new(vec![4, 4, 2]),
        64 => BinGrid::new(vec![4, 4, 4]),
        other => return Err(format!("unsupported --dims {other} (use 16, 32, or 64)")),
    })
}

fn generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = get(flags, "out")?;
    let count: usize = get_num(flags, "count", 1000)?;
    let dims: usize = get_num(flags, "dims", 64)?;
    let seed: u64 = get_num(flags, "seed", 2006)?;
    let grid = grid_for(dims)?;
    eprintln!("generating {count} synthetic images ({dims}-bin histograms, seed {seed})...");
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(seed));
    let db = corpus.build_database(&grid, count);
    storage::save(&db, out).map_err(|e| e.to_string())?;
    eprintln!("wrote {} histograms to {out}", db.len());
    Ok(())
}

fn load_db(flags: &HashMap<String, String>) -> Result<HistogramDb, String> {
    let path = get(flags, "db")?;
    storage::load(path).map_err(|e| format!("{path}: {e}"))
}

fn info(flags: &HashMap<String, String>) -> Result<(), String> {
    let db = load_db(flags)?;
    println!("histograms : {}", db.len());
    println!("dimensions : {}", db.dims());
    let variances = db.bin_variances();
    let mut top: Vec<(usize, f64)> = variances.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "top-variance bins (reduced LB_Man index candidates): {:?}",
        top.iter().take(3).map(|(i, _)| *i).collect::<Vec<_>>()
    );
    let nonzero: usize = db
        .iter()
        .map(|(_, h)| h.bins().iter().filter(|b| **b > 0.0).count())
        .sum();
    println!(
        "mean nonzero bins per histogram: {:.1}",
        nonzero as f64 / db.len().max(1) as f64
    );
    Ok(())
}

/// Fans one record out to several subscribers, so `--metrics-out` and
/// `--trace-json` can observe the same query.
struct Tee(Vec<Arc<dyn obs::Subscriber>>);

impl obs::Subscriber for Tee {
    fn on_close(&self, record: &obs::SpanRecord) {
        for s in &self.0 {
            s.on_close(record);
        }
    }

    fn flush(&self) {
        for s in &self.0 {
            s.flush();
        }
    }
}

/// Builds the subscriber stack requested by `--metrics-out` /
/// `--trace-json`. Returns the recorder (for post-hoc aggregation) and
/// the install guard keeping the stack live.
fn telemetry(
    flags: &HashMap<String, String>,
) -> Result<(Option<Arc<obs::RingRecorder>>, Option<obs::InstallGuard>), String> {
    let mut subscribers: Vec<Arc<dyn obs::Subscriber>> = Vec::new();
    let recorder = if flags.contains_key("metrics-out") {
        let r = Arc::new(obs::RingRecorder::new(1 << 16));
        subscribers.push(r.clone());
        Some(r)
    } else {
        None
    };
    if let Some(path) = flags.get("trace-json") {
        let emitter = if path == "-" || path == "stderr" {
            obs::JsonLinesEmitter::stderr()
        } else {
            let file = File::create(path).map_err(|e| format!("--trace-json {path}: {e}"))?;
            obs::JsonLinesEmitter::new(Box::new(file))
        };
        subscribers.push(Arc::new(emitter));
    }
    let guard = match subscribers.len() {
        0 => None,
        1 => Some(obs::install(subscribers.pop().expect("one subscriber"))),
        _ => Some(obs::install(Arc::new(Tee(subscribers)))),
    };
    Ok((recorder, guard))
}

/// Aggregates the recorded spans and the query's own stats into a
/// registry and writes `<base>.prom` and `<base>.json`.
fn write_metrics(
    base: &str,
    recorder: &obs::RingRecorder,
    stats: &earthmover::core::stats::QueryStats,
) -> Result<(), String> {
    let registry = obs::MetricsRegistry::new();
    for record in recorder.drain() {
        registry.observe_span(&record);
    }
    if recorder.dropped() > 0 {
        registry
            .counter("trace_records_dropped_total")
            .inc(recorder.dropped());
    }
    for (name, elapsed) in &stats.stage_elapsed {
        registry
            .histogram(&format!("stage_{name}_seconds"))
            .observe(*elapsed);
    }
    registry
        .counter("exact_evaluations_total")
        .inc(stats.exact_evaluations);
    for (name, evals) in &stats.filter_evaluations {
        registry
            .counter(&format!("filter_{name}_evaluations_total"))
            .inc(*evals);
    }
    registry
        .counter("node_accesses_total")
        .inc(stats.node_accesses);
    registry
        .counter("degradations_total")
        .inc(stats.degradations.len() as u64);
    registry.gauge("db_size").set(stats.db_size as f64);
    registry.gauge("selectivity").set(stats.selectivity());
    registry
        .gauge("query_seconds")
        .set(stats.elapsed.as_secs_f64());
    let prom_path = format!("{base}.prom");
    let json_path = format!("{base}.json");
    std::fs::write(&prom_path, registry.to_prometheus())
        .map_err(|e| format!("{prom_path}: {e}"))?;
    std::fs::write(&json_path, registry.to_json()).map_err(|e| format!("{json_path}: {e}"))?;
    eprintln!("metrics written to {prom_path} and {json_path}");
    Ok(())
}

fn query(flags: &HashMap<String, String>) -> Result<(), String> {
    let db = load_db(flags)?;
    let id: usize = get_num(flags, "id", usize::MAX)?;
    if id >= db.len() {
        return Err(format!(
            "--id must name a database object (0..{})",
            db.len().saturating_sub(1)
        ));
    }
    let k: usize = get_num(flags, "k", 10)?;
    let pipeline = flags.get("pipeline").map(|s| s.as_str()).unwrap_or("combo");
    let grid = grid_for(db.dims())?;
    let q = db.get(id).to_histogram();
    let (recorder, _guard) = telemetry(flags)?;

    let result = match pipeline {
        "scan" => {
            let exact = ExactEmd::new(grid.cost_matrix());
            linear_scan_knn(&db, &q, k, &exact)
        }
        name => {
            let builder = QueryEngine::builder(&db, &grid);
            let engine = match name {
                "combo" => builder.build(),
                "man" => builder
                    .first_stage(FirstStage::ManhattanScan)
                    .lb_im(false)
                    .build(),
                "im" => builder.first_stage(FirstStage::ImScan).build(),
                other => return Err(format!("unknown --pipeline {other}")),
            };
            engine.knn(&q, k)
        }
    }
    .map_err(|e| format!("query failed: {e}"))?;

    for note in &result.stats.degradations {
        eprintln!("warning: {note}");
    }
    println!("{k}-NN of object {id} ({} pipeline):", pipeline);
    for (rank, (oid, dist)) in result.items.iter().enumerate() {
        println!("  {rank:>2}. object {oid:>6}  emd {dist:.6}");
    }
    let s = &result.stats;
    println!(
        "work: {} exact EMD evaluations / {} objects (selectivity {:.3}%), {} index node reads, {:?}",
        s.exact_evaluations,
        s.db_size,
        100.0 * s.selectivity(),
        s.node_accesses,
        s.elapsed
    );
    if !s.stage_elapsed.is_empty() {
        let stages: Vec<String> = s
            .stage_elapsed
            .iter()
            .map(|(name, d)| format!("{name} {:.1}µs", d.as_secs_f64() * 1e6))
            .collect();
        println!("stages: {}", stages.join(", "));
    }
    if let Some(recorder) = &recorder {
        write_metrics(get(flags, "metrics-out")?, recorder, s)?;
    }
    Ok(())
}

/// `emdtool serve` — run the query daemon on a page file. Drains and
/// stops on a client `shutdown` frame (`emdtool client --op shutdown`);
/// the standalone `emdd` binary additionally handles signals.
fn serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let db = load_db(flags)?;
    let grid = grid_for(db.dims())?;
    let addr = flags
        .get("addr")
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:4406");
    let default_deadline_ms: u64 = get_num(flags, "default-deadline-ms", 0)?;
    let cfg = serve_api::ServerConfig {
        workers: get_num(flags, "workers", 4)?,
        queue_depth: get_num(flags, "queue", 64)?,
        default_deadline: (default_deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(default_deadline_ms)),
        ..serve_api::ServerConfig::default()
    };
    let subscriber: Option<Arc<dyn obs::Subscriber>> = match flags.get("trace-json") {
        None => None,
        Some(path) if path == "-" || path == "stderr" => {
            Some(Arc::new(obs::JsonLinesEmitter::stderr()))
        }
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("--trace-json {path}: {e}"))?;
            Some(Arc::new(obs::JsonLinesEmitter::new(Box::new(file))))
        }
    };
    let server = serve_api::Server::bind(addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} histograms ({} bins) on {local}; stop with: emdtool client --addr {local} --op shutdown",
        db.len(),
        db.dims()
    );
    server
        .run(&db, &grid, subscriber)
        .map_err(|e| e.to_string())?;
    eprintln!("drained, bye");
    Ok(())
}

/// `emdtool shard-split` — partition a database into shard files by the
/// coordinator's hash placement, so `emdd-coord` can reconstruct the
/// local→global id maps by replaying the same placement.
fn shard_split(flags: &HashMap<String, String>) -> Result<(), String> {
    let db = load_db(flags)?;
    let shards: usize = get_num(flags, "shards", 0)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let prefix = get(flags, "out-prefix")?;
    let mut parts: Vec<HistogramDb> = (0..shards).map(|_| HistogramDb::new(db.dims())).collect();
    // Global ids ascending: local insertion order must match the
    // coordinator's replay of the placement.
    for id in 0..db.len() {
        let shard = serve_api::shard_of(id as u64, shards);
        if let Some(part) = parts.get_mut(shard) {
            part.push(db.get(id).to_histogram());
        }
    }
    for (i, part) in parts.iter().enumerate() {
        let path = format!("{prefix}{i}.emdb");
        storage::save(part, &path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote shard {i}: {} histograms to {path}", part.len());
    }
    eprintln!(
        "split {} histograms across {shards} shard(s); serve each with emdd \
         and point emdd-coord --shards at them in index order",
        db.len()
    );
    Ok(())
}

/// `emdtool store-stats` — open (converting once if needed) a database
/// as a paged column store and report the storage-hierarchy picture:
/// block layout, buffer-pool residency and hit rate after a cold+warm
/// sweep, and filter-cache occupancy after two identical queries.
fn store_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = get(flags, "db")?;
    let pool_mb: usize = get_num(flags, "pool-mb", 4)?;
    let budget = pool_mb.max(1).saturating_mul(1024 * 1024);
    let (db, source) = match storage::open_paged(path, budget) {
        Ok(db) => (db, path.to_string()),
        Err(_) => {
            // Not a column file: convert the row-major .emdb once.
            let sidecar = format!("{path}.emdc");
            if !std::path::Path::new(&sidecar).exists() {
                let resident = storage::load(path).map_err(|e| format!("{path}: {e}"))?;
                storage::save_paged(&resident, &sidecar).map_err(|e| format!("{sidecar}: {e}"))?;
                eprintln!("converted {path} -> {sidecar}");
            }
            let db =
                storage::open_paged(&sidecar, budget).map_err(|e| format!("{sidecar}: {e}"))?;
            (db, sidecar)
        }
    };
    // Cold sweep touches every block once (all misses), the warm sweep
    // re-reads them (hits up to pool capacity) — so the printed hit rate
    // reflects how much of the corpus the pool can keep resident.
    for sweep in 0..2 {
        for b in 0..db.num_blocks() {
            if let Err(e) = db.block(b) {
                return Err(format!("block {b} unreadable on sweep {sweep}: {e}"));
            }
        }
    }
    // Two identical queries: the second one's filter distances come out
    // of the query-signature cache.
    if db.len() > 1 {
        let grid = grid_for(db.dims())?;
        let engine = QueryEngine::builder(&db, &grid).build();
        let q = db.try_row(0).map_err(|e| e.to_string())?.to_histogram();
        let k = 5.min(db.len());
        for _ in 0..2 {
            engine.knn(&q, k).map_err(|e| format!("probe query: {e}"))?;
        }
    }
    let resident = db.resident_block_count();
    let capacity = db.pool_capacity();
    println!("column file    : {source}");
    println!(
        "rows           : {} x {} bins, {} rows/block",
        db.len(),
        db.dims(),
        db.rows_per_block()
    );
    println!(
        "blocks         : {} total, {} resident ({:.1}% of corpus)",
        db.num_blocks(),
        resident,
        100.0 * resident as f64 / db.num_blocks().max(1) as f64
    );
    println!("pool capacity  : {capacity} blocks ({pool_mb} MiB budget)");
    if let Some(pool) = db.pool_stats() {
        println!(
            "pool traffic   : {} hits / {} misses ({:.1}% hit rate), {} evictions, {} bypasses",
            pool.hits,
            pool.misses,
            100.0 * pool.hit_rate(),
            pool.evictions,
            pool.bypasses
        );
    }
    let cache = db.filter_cache().stats();
    println!(
        "filter cache   : {} entries, {} hits / {} misses",
        cache.entries, cache.hits, cache.misses
    );
    Ok(())
}

/// Prints one query outcome (complete, partial, or shed) with its
/// server-side work breakdown.
fn print_outcome(outcome: serve_api::Outcome) {
    match outcome {
        serve_api::Outcome::Complete { items, stats }
        | serve_api::Outcome::Partial { items, stats } => {
            if stats.deadline_expired {
                eprintln!("warning: deadline expired — partial best-effort answer");
            }
            for note in &stats.degradations {
                eprintln!("warning: {note}");
            }
            for (rank, (oid, dist)) in items.iter().enumerate() {
                println!("  {rank:>2}. object {oid:>6}  emd {dist:.6}");
            }
            println!(
                "work: {} exact EMD evaluations / {} objects, {:?} server-side",
                stats.exact_evaluations, stats.db_size, stats.elapsed
            );
            if let Some(info) = &stats.retrieval {
                println!(
                    "retrieval: {} tier, guaranteed recall {:.3}",
                    info.mode, info.recall
                );
            }
        }
        serve_api::Outcome::Overloaded { queue_depth, stats } => {
            eprintln!("server overloaded (queue depth {queue_depth}); request shed");
            for note in &stats.degradations {
                eprintln!("note: {note}");
            }
        }
    }
}

/// `emdtool trace` — issue one sampled, traced k-NN and render the
/// linked result tree from the response's per-shard provenance. The
/// printed trace id greps straight into the daemons' `--trace-json`
/// JSONL output (`"trace_id":"<hex>"`), where the full span tree lives.
fn trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let db = load_db(flags)?;
    let id: usize = get_num(flags, "id", usize::MAX)?;
    if id >= db.len() {
        return Err(format!(
            "--id must name a database object (0..{})",
            db.len().saturating_sub(1)
        ));
    }
    let k: u32 = get_num(flags, "k", 10)?;
    let deadline_us: u64 = get_num::<u64>(flags, "deadline-ms", 0)?.saturating_mul(1000);
    let q = db.get(id).to_histogram();
    // A fresh sampled root: the client call below forwards it on the
    // wire, so every process this query touches joins the same trace.
    let context = obs::TraceContext::root(true);
    let _scope = obs::set_trace(Some(context));
    let mut client = serve_api::Client::connect(addr, std::time::Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let started = std::time::Instant::now();
    let outcome = client.knn(&q, k, deadline_us).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    println!("trace {:016x} (sampled root)", context.trace_id);
    match outcome {
        serve_api::Outcome::Complete { items, stats }
        | serve_api::Outcome::Partial { items, stats } => {
            println!(
                "└─ request @ {addr}  {:.1}ms round-trip, {:.1}ms server-side, {} result(s){}",
                elapsed.as_secs_f64() * 1e3,
                stats.elapsed.as_secs_f64() * 1e3,
                items.len(),
                if stats.deadline_expired {
                    "  [partial]"
                } else {
                    ""
                }
            );
            let straggler = stats.straggler().map(|p| (p.shard, p.endpoint.clone()));
            let last = stats.provenance.len().saturating_sub(1);
            for (i, p) in stats.provenance.iter().enumerate() {
                let branch = if i == last { "└─" } else { "├─" };
                let role = if p.from_replica { "replica" } else { "primary" };
                let slowest = straggler
                    .as_ref()
                    .is_some_and(|(s, e)| *s == p.shard && *e == p.endpoint);
                println!(
                    "   {branch} shard {} @ {} ({role})  {:.1}ms  retries={} hedge={}  \
                     exact_emd={}{}",
                    p.shard,
                    p.endpoint,
                    p.latency.as_secs_f64() * 1e3,
                    p.retries,
                    if p.hedge_fired { "yes" } else { "no" },
                    p.stats.exact_evaluations,
                    if slowest { "  <- straggler" } else { "" }
                );
            }
            if stats.provenance.is_empty() {
                println!("   (no per-shard provenance: single-node server)");
            }
            for note in &stats.degradations {
                eprintln!("warning: {note}");
            }
        }
        serve_api::Outcome::Overloaded { queue_depth, .. } => {
            eprintln!("server overloaded (queue depth {queue_depth}); request shed");
        }
    }
    Ok(())
}

/// `emdtool top` — per-shard fleet table parsed out of the
/// coordinator's merged, per-shard-labeled metrics export.
fn top(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let mut client = serve_api::Client::connect(addr, std::time::Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let prom = client.stats().map_err(|e| e.to_string())?;
    let rows = serve_api::parse_fleet(&prom);
    if rows.is_empty() {
        return Err(
            "no per-shard series in the stats export — is the target an emdd-coord \
             with fleet scraping enabled, and has a scrape completed yet?"
                .to_string(),
        );
    }
    let fmt_ms = |v: Option<f64>| match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".to_string(),
    };
    let fmt_count = |v: Option<f64>| match v {
        Some(n) => format!("{n:.0}"),
        None => "-".to_string(),
    };
    let fmt_pct = |v: Option<f64>| match v {
        Some(frac) => format!("{:.1}%", 100.0 * frac),
        None => "-".to_string(),
    };
    println!(
        "{:>5}  {:<21}  {:>9}  {:>8}  {:>8}  {:>5}  {:>7}  {:>6}  {:>6}",
        "SHARD", "ENDPOINT", "REQUESTS", "P50(ms)", "P99(ms)", "QUEUE", "POOL%", "BLOCKS", "FCACHE"
    );
    for row in rows {
        println!(
            "{:>5}  {:<21}  {:>9}  {:>8}  {:>8}  {:>5}  {:>7}  {:>6}  {:>6}",
            row.shard,
            row.endpoint,
            row.requests,
            fmt_ms(row.p50_ms),
            fmt_ms(row.p99_ms),
            fmt_ms(row.queue_depth),
            fmt_pct(row.pool_hit_rate),
            fmt_count(row.pool_resident_blocks),
            fmt_count(row.filter_cache_entries),
        );
    }
    Ok(())
}

/// `emdtool client` — one request against a running daemon.
fn client(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = get(flags, "addr")?;
    let op = get(flags, "op")?;
    let mut client = serve_api::Client::connect(addr, std::time::Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let deadline_us: u64 = get_num::<u64>(flags, "deadline-ms", 0)?.saturating_mul(1000);
    let query_histogram = || -> Result<earthmover::Histogram, String> {
        let db = load_db(flags)?;
        let id: usize = get_num(flags, "id", usize::MAX)?;
        if id >= db.len() {
            return Err(format!(
                "--id must name a database object (0..{})",
                db.len().saturating_sub(1)
            ));
        }
        Ok(db.get(id).to_histogram())
    };
    match op {
        "knn" => {
            let k: u32 = get_num(flags, "k", 10)?;
            let q = query_histogram()?;
            let outcome = match flags.get("mode") {
                None => client.knn(&q, k, deadline_us).map_err(|e| e.to_string())?,
                Some(spec) => {
                    let mode = earthmover::RetrievalMode::parse(spec).ok_or_else(|| {
                        format!("--mode {spec}: expected exact, sketch, or approx:EPS")
                    })?;
                    client
                        .knn_mode(&q, k, deadline_us, mode)
                        .map_err(|e| e.to_string())?
                }
            };
            print_outcome(outcome);
        }
        "range" => {
            let epsilon: f64 = get_num(flags, "epsilon", 0.25)?;
            let q = query_histogram()?;
            let outcome = client
                .range(&q, epsilon, deadline_us)
                .map_err(|e| e.to_string())?;
            print_outcome(outcome);
        }
        "health" => {
            let h = client.health().map_err(|e| e.to_string())?;
            println!(
                "status   : {}",
                if h.draining { "draining" } else { "serving" }
            );
            println!("objects  : {}", h.db_size);
            println!("dims     : {}", h.dims);
            println!("uptime   : {:.1}s", h.uptime_ms as f64 / 1e3);
        }
        "stats" => {
            let prom = client.stats().map_err(|e| e.to_string())?;
            print!("{prom}");
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown acknowledged; server is draining");
        }
        other => return Err(format!("unknown --op {other}")),
    }
    Ok(())
}
