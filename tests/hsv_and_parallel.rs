//! Cross-crate scenarios beyond the defaults: HSV feature extraction,
//! parallel scans under the engine, and incremental-cost behaviour of
//! the index ranking.

use earthmover::core::multistep::{CandidateSource, RtreeSource};
use earthmover::core::parallel;
use earthmover::core::reduce::AvgReducer;
use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::imaging::extract::ColorSpace;
use earthmover::{linear_scan_knn, BinGrid, DistanceMeasure, ExactEmd, QueryEngine};

#[test]
fn hsv_color_space_pipeline_is_complete() {
    // The whole pipeline must be agnostic to the color space used for
    // extraction — HSV histograms are just histograms.
    let grid = BinGrid::new(vec![4, 2, 2]);
    let config = CorpusConfig {
        color_space: ColorSpace::Hsv,
        ..CorpusConfig::default().with_seed(606)
    };
    let corpus = SyntheticCorpus::new(config);
    let db = corpus.build_database(&grid, 200);
    let exact = ExactEmd::new(grid.cost_matrix());
    let engine = QueryEngine::builder(&db, &grid).build();
    for qid in [3, 77, 151] {
        let q = db.get(qid).to_histogram();
        let multi = engine.knn(&q, 7).unwrap();
        let brute = linear_scan_knn(&db, &q, 7, &exact).unwrap();
        for ((_, a), (_, b)) in multi.items.iter().zip(&brute.items) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn hsv_and_rgb_histograms_differ() {
    let grid = BinGrid::new(vec![4, 4, 4]);
    let rgb_corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(9));
    let hsv_corpus = SyntheticCorpus::new(CorpusConfig {
        color_space: ColorSpace::Hsv,
        ..CorpusConfig::default().with_seed(9)
    });
    let a = rgb_corpus.histogram(0, &grid);
    let b = hsv_corpus.histogram(0, &grid);
    assert_ne!(
        a.bins(),
        b.bins(),
        "projections must place mass differently"
    );
}

#[test]
fn parallel_scan_thread_count_does_not_change_results() {
    let grid = BinGrid::new(vec![4, 4, 2]);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(11));
    let db = corpus.build_database(&grid, 301); // odd size on purpose
    let exact = ExactEmd::new(grid.cost_matrix());
    let q = db.get(100).to_histogram();
    let baseline = parallel::scan_knn(&db, &q, &exact, 7, 1);
    for threads in [2, 4, 7, 32] {
        let got = parallel::scan_knn(&db, &q, &exact, 7, threads);
        assert_eq!(baseline, got, "threads = {threads}");
    }
}

#[test]
fn index_ranking_cost_grows_with_pulls() {
    // The optimal algorithm's early termination only pays off if the
    // candidate source is genuinely lazy: pulling a handful of items
    // must touch far fewer nodes than exhausting the ranking.
    let grid = BinGrid::new(vec![4, 4, 4]);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(13));
    let db = corpus.build_database(&grid, 3_000);
    let source = RtreeSource::build(&db, AvgReducer::new(grid.centroids().to_vec()));
    let q = db.get(0).to_histogram();

    let mut few = source.ranking(&q).unwrap();
    for _ in 0..10 {
        few.next().unwrap();
    }
    let few_cost = few.cost();

    let mut all = source.ranking(&q).unwrap();
    while all.next().unwrap().is_some() {}
    let all_cost = all.cost();

    assert!(
        few_cost.node_accesses * 4 < all_cost.node_accesses,
        "lazy ranking read {} nodes for 10 pulls vs {} for all",
        few_cost.node_accesses,
        all_cost.node_accesses
    );
}

#[test]
fn engine_rejects_mismatched_grid() {
    let grid64 = BinGrid::new(vec![4, 4, 4]);
    let grid16 = BinGrid::new(vec![4, 2, 2]);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(15));
    let db = corpus.build_database(&grid16, 10);
    let result = std::panic::catch_unwind(|| {
        let _ = QueryEngine::builder(&db, &grid64).build();
    });
    assert!(
        result.is_err(),
        "16-bin DB with 64-bin grid must be rejected"
    );
}

#[test]
fn quadratic_form_is_not_a_lower_bound() {
    // Regression guard for documentation honesty: QF must never be used
    // as a filter. Find at least one pair where QF exceeds the EMD.
    use earthmover::QuadraticForm;
    let grid = BinGrid::new(vec![4, 4, 4]);
    let cost = grid.cost_matrix();
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(17));
    let db = corpus.build_database(&grid, 40);
    let qf = QuadraticForm::from_cost(&cost);
    let exact = ExactEmd::new(cost);
    let mut violations = 0;
    for i in 0..db.len() {
        for j in (i + 1)..db.len() {
            if qf.distance(&db.get(i).to_histogram(), &db.get(j).to_histogram())
                > exact.distance(&db.get(i).to_histogram(), &db.get(j).to_histogram()) + 1e-9
            {
                violations += 1;
            }
        }
    }
    assert!(
        violations > 0,
        "expected QF to exceed the EMD somewhere; if it never does, it \
         could serve as a filter and the docs are wrong"
    );
}
