#![allow(clippy::needless_range_loop)]

//! Property-based completeness tests: the theorems of §4 of the paper,
//! checked against randomized histograms and ground distances.
//!
//! Completeness of the whole multistep machinery reduces to one property
//! per filter — `LB(x, y) ≤ EMD(x, y)` — plus the correctness of the
//! query algorithms, both exercised here.

use earthmover::core::multistep::{optimal_knn, range_query, ScanSource};
use earthmover::{
    linear_scan_knn, BinGrid, CostMatrix, DistanceMeasure, ExactEmd, Histogram, HistogramDb, LbAvg,
    LbEuclidean, LbIm, LbManhattan, LbMax,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random normalized histogram with some sparsity.
fn random_histogram(rng: &mut StdRng, n: usize) -> Histogram {
    let mut bins: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    for b in bins.iter_mut() {
        if rng.gen_bool(0.4) {
            *b = 0.0;
        }
    }
    if bins.iter().sum::<f64>() == 0.0 {
        bins[rng.gen_range(0..n)] = 1.0;
    }
    Histogram::normalized(bins).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every lower bound of the paper is below the exact EMD, for grids of
    /// all three evaluation resolutions.
    #[test]
    fn all_bounds_lower_bound_emd(seed in any::<u64>(), shape in 0usize..3) {
        let axes = [vec![4, 2, 2], vec![4, 4, 2], vec![4, 4, 4]][shape].clone();
        let grid = BinGrid::new(axes);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, grid.num_bins());
        let y = random_histogram(&mut rng, grid.num_bins());
        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);

        let bounds: Vec<(&str, f64)> = vec![
            ("LB_Avg", LbAvg::new(grid.centroids().to_vec()).distance(&x, &y)),
            ("LB_Man", LbManhattan::new(&cost).distance(&x, &y)),
            ("LB_Max", LbMax::new(&cost).distance(&x, &y)),
            ("LB_Eucl", LbEuclidean::new(&cost).distance(&x, &y)),
            ("LB_IM", LbIm::new(&cost).distance(&x, &y)),
            ("LB_IM basic", LbIm::with_options(&cost, false, false).distance(&x, &y)),
        ];
        for (name, lb) in bounds {
            prop_assert!(lb <= exact + 1e-9, "{name}: {lb} > {exact}");
        }
    }

    /// The Lp bounds hold for *any* metric ground distance, not just grid
    /// Euclidean ones — test with random metric cost matrices built by
    /// shortest-path closure of a random graph.
    #[test]
    fn lp_bounds_hold_for_random_metrics(seed in any::<u64>(), n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random symmetric costs, then Floyd–Warshall to enforce the
        // triangle inequality (making it a genuine metric).
        let mut d = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = rng.gen_range(0.1..2.0);
                d[i][j] = c;
                d[j][i] = c;
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if d[i][k] + d[k][j] < d[i][j] {
                        d[i][j] = d[i][k] + d[k][j];
                    }
                }
            }
        }
        let cost = CostMatrix::from_fn(n, |i, j| d[i][j]);
        prop_assert!(cost.is_metric(1e-9));

        let x = random_histogram(&mut rng, n);
        let y = random_histogram(&mut rng, n);
        let exact = ExactEmd::new(cost.clone()).distance(&x, &y);
        prop_assert!(LbManhattan::new(&cost).distance(&x, &y) <= exact + 1e-9);
        prop_assert!(LbMax::new(&cost).distance(&x, &y) <= exact + 1e-9);
        prop_assert!(LbEuclidean::new(&cost).distance(&x, &y) <= exact + 1e-9);
        prop_assert!(LbIm::new(&cost).distance(&x, &y) <= exact + 1e-9);
    }

    /// Optimal multistep k-NN returns exactly the brute-force distances
    /// for random databases, filters, and k.
    #[test]
    fn optimal_knn_is_complete(seed in any::<u64>(), k in 1usize..12) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..60 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let q = random_histogram(&mut rng, grid.num_bins());
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let im = LbIm::new(&cost);

        let brute = linear_scan_knn(&db, &q, k, &exact).unwrap();
        let multi = optimal_knn(&source, &db, &q, k, &[&im], &exact).unwrap();
        prop_assert_eq!(multi.items.len(), brute.items.len());
        for ((_, a), (_, b)) in multi.items.iter().zip(&brute.items) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Range queries return exactly the ε-ball, no false drops, no false
    /// hits.
    #[test]
    fn range_query_is_exact(seed in any::<u64>(), eps in 0.0f64..0.5) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = HistogramDb::new(grid.num_bins());
        for _ in 0..50 {
            db.push(random_histogram(&mut rng, grid.num_bins()));
        }
        let q = random_histogram(&mut rng, grid.num_bins());
        let exact = ExactEmd::new(cost.clone());
        let source = ScanSource::new(&db, LbManhattan::new(&cost));
        let result = range_query(&source, &db, &q, eps, &[], &exact).unwrap();
        // Results are distance-ordered; compare as id sets.
        let mut got: Vec<usize> = result.items.iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        let expect: Vec<usize> = db
            .iter()
            .filter(|(_, h)| exact.distance(&q, &h.to_histogram()) <= eps)
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn bound_dominance_chain_on_corpus_histograms() {
    // LB_Eucl ≤ LB_Man (proven, §4.5) and refined-symmetric LB_IM
    // dominates its unrefined form, on realistic corpus histograms.
    use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
    let grid = BinGrid::new(vec![4, 4, 4]);
    let cost = grid.cost_matrix();
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(5));
    let db = corpus.build_database(&grid, 60);
    let man = LbManhattan::new(&cost);
    let eucl = LbEuclidean::new(&cost);
    let im_full = LbIm::new(&cost);
    let im_basic = LbIm::with_options(&cost, false, false);
    for i in (0..db.len()).step_by(3) {
        for j in (1..db.len()).step_by(7) {
            let (x, y) = (&db.get(i).to_histogram(), &db.get(j).to_histogram());
            assert!(eucl.distance(x, y) <= man.distance(x, y) + 1e-12);
            assert!(im_basic.distance(x, y) <= im_full.distance(x, y) + 1e-12);
        }
    }
}
