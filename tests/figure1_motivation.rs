//! The paper's Figure 1 in test form: bin-by-bin distances confuse a
//! slight color shift with a completely different color distribution;
//! the EMD does not.
//!
//! Three histograms over a 1-D tone axis:
//! * `original`  — mass on tones 0–1,
//! * `shifted`   — the same shape moved one bin to the right
//!   (the "slight shift in color tone" of Figure 1, perceptually close),
//! * `scattered` — half the mass hauled to the far end of the axis
//!   (perceptually far).
//!
//! A human ranks `shifted` closer to `original` than `scattered`. L1
//! sees the two comparisons as *identical* (each changes one bin's worth
//! of mass); the EMD charges by how far mass travels and gets it right.

use earthmover::{CostMatrix, DistanceMeasure, ExactEmd, Histogram, QuadraticForm};

fn line_cost(n: usize) -> CostMatrix {
    CostMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs())
}

fn l1(x: &Histogram, y: &Histogram) -> f64 {
    x.bins()
        .iter()
        .zip(y.bins())
        .map(|(a, b)| (a - b).abs())
        .sum()
}

fn fixtures() -> (Histogram, Histogram, Histogram) {
    // Chosen so that `shifted` and `scattered` are L1-equidistant from
    // `original`: both comparisons change exactly one bin's worth of mass.
    let original = Histogram::normalized(vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
    let shifted = Histogram::normalized(vec![0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
    let scattered = Histogram::normalized(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
    (original, shifted, scattered)
}

#[test]
fn l1_cannot_rank_the_shift_correctly() {
    let (original, shifted, scattered) = fixtures();
    // Bin-by-bin comparison sees the one-tone shift and the cross-space
    // scatter as *identical* — exactly the Figure 1 failure.
    let d_shift = l1(&original, &shifted);
    let d_scatter = l1(&original, &scattered);
    assert!(
        (d_shift - d_scatter).abs() < 1e-12,
        "L1 should be blind here: shift {d_shift} vs scatter {d_scatter}"
    );
}

#[test]
fn emd_ranks_the_shift_as_much_closer() {
    let (original, shifted, scattered) = fixtures();
    let emd = ExactEmd::new(line_cost(8));
    let d_shift = emd.distance(&original, &shifted);
    let d_scatter = emd.distance(&original, &scattered);
    // The shift slides the whole distribution one tone (cost 1); the
    // scatter hauls half the mass across six tones (cost 0.5 * 6 = 3).
    assert!((d_shift - 1.0).abs() < 1e-9, "one-bin shift: {d_shift}");
    assert!((d_scatter - 3.0).abs() < 1e-9, "scatter: {d_scatter}");
    assert!(
        d_scatter >= 2.5 * d_shift,
        "EMD must rank the scatter much farther: {d_scatter} vs {d_shift}"
    );
}

#[test]
fn quadratic_form_smooths_but_underseparates() {
    // §2: the quadratic form softens the shift penalty relative to L1 but
    // "still structural differences in images cannot be distinguished
    // from color shifts" as crisply as under the EMD.
    let (original, shifted, scattered) = fixtures();
    let cost = line_cost(8);
    let qf = QuadraticForm::from_cost(&cost);
    let emd = ExactEmd::new(cost);

    let qf_ratio = qf.distance(&original, &scattered) / qf.distance(&original, &shifted);
    let emd_ratio = emd.distance(&original, &scattered) / emd.distance(&original, &shifted);
    assert!(qf_ratio > 1.0, "QF at least notices the difference");
    assert!(
        emd_ratio > qf_ratio,
        "EMD separates shift from scatter more sharply: {emd_ratio:.2} vs {qf_ratio:.2}"
    );
}

#[test]
fn every_lower_bound_respects_the_figure1_ordering_inputs() {
    // Sanity net: the bounds stay below the EMD on these adversarial
    // (highly structured) histograms too, not just random ones.
    use earthmover::{LbEuclidean, LbIm, LbManhattan, LbMax};
    let (original, shifted, scattered) = fixtures();
    let cost = line_cost(8);
    let emd = ExactEmd::new(cost.clone());
    for (x, y) in [
        (&original, &shifted),
        (&original, &scattered),
        (&shifted, &scattered),
    ] {
        let exact = emd.distance(x, y);
        assert!(LbManhattan::new(&cost).distance(x, y) <= exact + 1e-9);
        assert!(LbMax::new(&cost).distance(x, y) <= exact + 1e-9);
        assert!(LbEuclidean::new(&cost).distance(x, y) <= exact + 1e-9);
        assert!(LbIm::new(&cost).distance(x, y) <= exact + 1e-9);
    }
}
