//! End-to-end integration tests spanning every workspace crate: synthetic
//! corpus → histogram database → persistence → index construction →
//! multistep queries → exact EMD refinement.

use earthmover::core::pipeline::{FirstStage, KnnAlgorithm, QueryEngine};
use earthmover::core::storage;
use earthmover::imaging::corpus::{CorpusConfig, SyntheticCorpus};
use earthmover::{linear_scan_knn, BinGrid, DistanceMeasure, ExactEmd};

fn build(grid: &BinGrid, n: usize, seed: u64) -> earthmover::HistogramDb {
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(seed));
    corpus.build_database(grid, n)
}

#[test]
fn full_pipeline_matches_brute_force_on_corpus_data() {
    let grid = BinGrid::new(vec![4, 4, 2]); // 32 bins
    let db = build(&grid, 300, 42);
    let exact = ExactEmd::new(grid.cost_matrix());
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(900));
    let queries: Vec<_> = (1000..1005u64)
        .map(|id| corpus.histogram(id, &grid))
        .collect();

    for q in &queries {
        let q = q.clone().into_normalized().unwrap();
        let brute = linear_scan_knn(&db, &q, 10, &exact).unwrap();
        let bd: Vec<f64> = brute.items.iter().map(|(_, d)| *d).collect();
        for stage in [
            FirstStage::AvgIndex,
            FirstStage::ManhattanIndex { dims: 3 },
            FirstStage::ManhattanScan,
            FirstStage::ImScan,
        ] {
            for alg in [KnnAlgorithm::Optimal, KnnAlgorithm::Gemini] {
                let engine = QueryEngine::builder(&db, &grid)
                    .first_stage(stage)
                    .algorithm(alg)
                    .build();
                let r = engine.knn(&q, 10).unwrap();
                let rd: Vec<f64> = r.items.iter().map(|(_, d)| *d).collect();
                assert_eq!(rd.len(), bd.len(), "{stage:?}/{alg:?}");
                for (a, b) in rd.iter().zip(&bd) {
                    assert!((a - b).abs() < 1e-9, "{stage:?}/{alg:?}: {rd:?} vs {bd:?}");
                }
            }
        }
    }
}

#[test]
fn persistence_round_trip_preserves_query_results() {
    let grid = BinGrid::new(vec![2, 2, 2]);
    let db = build(&grid, 120, 7);
    let bytes = storage::to_bytes(&db);
    let reloaded = storage::from_bytes(&bytes).expect("round trip");
    assert_eq!(db, reloaded);

    // Queries against the reloaded database give identical answers.
    let engine_a = QueryEngine::builder(&db, &grid).build();
    let engine_b = QueryEngine::builder(&reloaded, &grid).build();
    let q = db.get(11).to_histogram();
    let a = engine_a.knn(&q, 5).unwrap();
    let b = engine_b.knn(&q, 5).unwrap();
    assert_eq!(
        a.items.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        b.items.iter().map(|(id, _)| *id).collect::<Vec<_>>()
    );
}

#[test]
fn selectivity_improves_along_the_paper_filter_ladder() {
    // The qualitative claim of §5: LB_IM needs far fewer exact EMD
    // refinements than the Lp/averaging filters.
    let grid = BinGrid::new(vec![4, 4, 4]);
    let db = build(&grid, 500, 99);
    let corpus = SyntheticCorpus::new(CorpusConfig::default().with_seed(99));
    let mut im_total = 0u64;
    let mut man_total = 0u64;
    for qid in [601u64, 607, 613, 619] {
        let q = corpus.histogram(qid, &grid).into_normalized().unwrap();
        let im = QueryEngine::builder(&db, &grid)
            .first_stage(FirstStage::ImScan)
            .build()
            .knn(&q, 10)
            .unwrap();
        let man = QueryEngine::builder(&db, &grid)
            .first_stage(FirstStage::ManhattanScan)
            .lb_im(false)
            .build()
            .knn(&q, 10)
            .unwrap();
        im_total += im.stats.exact_evaluations;
        man_total += man.stats.exact_evaluations;
    }
    assert!(
        im_total < man_total,
        "LB_IM refinements {im_total} should be below LB_Man's {man_total}"
    );
}

#[test]
fn parallel_scan_agrees_with_engine_results() {
    let grid = BinGrid::new(vec![2, 2, 2]);
    let db = build(&grid, 150, 3);
    let exact = ExactEmd::new(grid.cost_matrix());
    let q = db.get(42).to_histogram();
    let par = earthmover::core::parallel::scan_knn(&db, &q, &exact, 5, 4);
    let engine = QueryEngine::builder(&db, &grid).build();
    let multi = engine.knn(&q, 5).unwrap();
    for ((id_a, d_a), (id_b, d_b)) in par.iter().zip(&multi.items) {
        assert_eq!(id_a, id_b);
        assert!((d_a - d_b).abs() < 1e-9);
    }
}

#[test]
fn isoline_grid_is_consistent_with_filters() {
    // Spot-check the Figure 2 setup: on the 3-bin simplex, every lower
    // bound stays below the EMD at every grid point.
    let grid = BinGrid::new(vec![3]);
    let cost = grid.cost_matrix();
    let exact = ExactEmd::new(cost.clone());
    let man = earthmover::LbManhattan::new(&cost);
    let im = earthmover::LbIm::new(&cost);
    let center = earthmover::Histogram::new(vec![0.34, 0.33, 0.33]).unwrap();
    for i in 0..=20 {
        for j in 0..=(20 - i) {
            let a = i as f64 / 20.0;
            let b = j as f64 / 20.0;
            // max(0) clears the negative float dust of 1 - a - b.
            let h = earthmover::Histogram::new(vec![a, b, (1.0 - a - b).max(0.0)]).unwrap();
            let e = exact.distance(&h, &center);
            assert!(man.distance(&h, &center) <= e + 1e-9);
            assert!(im.distance(&h, &center) <= e + 1e-9);
        }
    }
}
