//! The EMD is a metric when the ground distance is a metric (§2 of the
//! paper) — checked here on random triples, along with the symmetry
//! behaviour of every filter.

use earthmover::{BinGrid, DistanceMeasure, ExactEmd, Histogram, LbIm, LbManhattan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_histogram(rng: &mut StdRng, n: usize) -> Histogram {
    let mut bins: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    for b in bins.iter_mut() {
        if rng.gen_bool(0.3) {
            *b = 0.0;
        }
    }
    if bins.iter().sum::<f64>() == 0.0 {
        bins[0] = 1.0;
    }
    Histogram::normalized(bins).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Triangle inequality: EMD(x, z) ≤ EMD(x, y) + EMD(y, z).
    #[test]
    fn emd_triangle_inequality(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![3, 3]);
        let exact = ExactEmd::new(grid.cost_matrix());
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, 9);
        let y = random_histogram(&mut rng, 9);
        let z = random_histogram(&mut rng, 9);
        let xy = exact.distance(&x, &y);
        let yz = exact.distance(&y, &z);
        let xz = exact.distance(&x, &z);
        prop_assert!(xz <= xy + yz + 1e-9, "{xz} > {xy} + {yz}");
    }

    /// Symmetry: EMD(x, y) = EMD(y, x).
    #[test]
    fn emd_symmetry(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let exact = ExactEmd::new(grid.cost_matrix());
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, 8);
        let y = random_histogram(&mut rng, 8);
        let a = exact.distance(&x, &y);
        let b = exact.distance(&y, &x);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Identity of indiscernibles (one direction): EMD(x, x) = 0.
    #[test]
    fn emd_self_distance_is_zero(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![4, 2]);
        let exact = ExactEmd::new(grid.cost_matrix());
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, 8);
        prop_assert!(exact.distance(&x, &x).abs() < 1e-12);
    }

    /// Non-negativity of the EMD and all filters.
    #[test]
    fn distances_are_non_negative(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, 8);
        let y = random_histogram(&mut rng, 8);
        prop_assert!(ExactEmd::new(cost.clone()).distance(&x, &y) >= 0.0);
        prop_assert!(LbManhattan::new(&cost).distance(&x, &y) >= 0.0);
        prop_assert!(LbIm::new(&cost).distance(&x, &y) >= 0.0);
    }

    /// The symmetric LB_IM is symmetric; the filters built from |x_i − y_i|
    /// are symmetric by construction.
    #[test]
    fn filter_symmetry(seed in any::<u64>()) {
        let grid = BinGrid::new(vec![2, 2, 2]);
        let cost = grid.cost_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_histogram(&mut rng, 8);
        let y = random_histogram(&mut rng, 8);
        let man = LbManhattan::new(&cost);
        prop_assert!((man.distance(&x, &y) - man.distance(&y, &x)).abs() < 1e-12);
        let im = LbIm::new(&cost);
        prop_assert!((im.distance(&x, &y) - im.distance(&y, &x)).abs() < 1e-12);
    }
}
